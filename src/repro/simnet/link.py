"""Links and ports: the serializing, store-and-forward wire model.

Each :class:`Port` owns a bounded egress queue that charges
serialization time (``bytes * 8 / bandwidth``) per packet, then delivers
the packet to the attached peer after the link propagation latency.  The
bounded queue is what creates *egress back-pressure*: a PsPIN handler
that forwards two packets per incoming packet (sPIN-PBT) ends up blocked
on the egress port, which is precisely the mechanism behind the paper's
observed IPC collapse (Table I, IPC 0.06 for PBT payload handlers).

The egress path is a fused callback chain rather than a server process:
``send`` starts serialization immediately when the wire is idle,
otherwise appends to a deque; a single ``tx-done`` kernel event per
packet fires the sender's completion, schedules the (closure-free)
delivery, and starts the next packet.  That is 3 heap events per packet
(tx-done, sender completion, delivery) versus the 5+ of the old
Store+process design, with identical simulated timestamps.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Protocol, Tuple

from ..telemetry.metrics import HandleCache
from .engine import Event, Simulator
from .packet import Packet

__all__ = ["Port", "Endpoint", "gbps_to_ns_per_byte"]


def gbps_to_ns_per_byte(gbps: float) -> float:
    """Serialization cost in ns/byte for a line rate in Gbit/s."""
    return 8.0 / gbps


class Endpoint(Protocol):
    """Anything that can terminate a link."""

    name: str

    def receive(self, pkt: Packet) -> None: ...


class Port:
    """A full-duplex network port with a serializing egress queue."""

    def __init__(
        self,
        sim: Simulator,
        owner_name: str,
        bandwidth_gbps: float,
        queue_packets: int = 64,
    ):
        self.sim = sim
        self.owner_name = owner_name
        self.bandwidth_gbps = bandwidth_gbps
        self._ns_per_byte = gbps_to_ns_per_byte(bandwidth_gbps)
        self.queue_packets = queue_packets
        #: packets accepted but not yet on the wire (excludes in-service)
        self._q: Deque[Tuple[Packet, Event]] = deque()
        self._busy = False
        self._cur_pkt: Optional[Packet] = None
        self._cur_done: Optional[Event] = None
        self.peer: Optional[Endpoint] = None
        self.latency_ns: float = 0.0
        # statistics
        self.tx_packets = 0
        self.tx_bytes = 0
        self.busy_ns = 0.0
        # Metric handles are resolved once per registry, not per packet
        # (the old per-packet f"link.{name}.queue_depth" formatting plus
        # dict lookup dominated the enabled-telemetry egress cost).
        name = owner_name
        self._handles = HandleCache(
            lambda m: (
                m.gauge(f"link.{name}.queue_depth"),
                m.counter(f"link.{name}.busy_ns"),
                m.counter(f"link.{name}.tx_bytes"),
                m.counter(f"link.{name}.tx_packets"),
            )
        )

    # -- wiring ----------------------------------------------------------
    def connect(self, peer: Endpoint, latency_ns: float) -> None:
        if self.peer is not None:
            raise RuntimeError(f"port of {self.owner_name} already connected")
        self.peer = peer
        self.latency_ns = latency_ns

    # -- sending ---------------------------------------------------------
    def send(self, pkt: Packet) -> Event:
        """Enqueue a packet for transmission.

        Returns an event that fires when the packet has been *fully
        serialized onto the wire* (not when delivered).  Yielding on it
        models a sender that blocks until egress accepts its data.
        """
        sim = self.sim
        done = Event(sim)
        pkt.enqueue_t = sim.now
        if self._busy:
            self._q.append((pkt, done))
        else:
            self._start(pkt, done)
        tel = sim.telemetry
        if tel.enabled:
            self._handles.get(tel.metrics)[0].set(
                sim.now, len(self._q) + 1  # +1: the packet now in service
            )
        return done

    def try_send(self, pkt: Packet) -> Optional[Event]:
        """Non-blocking enqueue; None when the egress queue is full."""
        # The in-service packet counts against capacity: with
        # queue_packets=1 an idle port accepts exactly one packet.
        if len(self._q) + self._busy >= self.queue_packets:
            return None
        return self.send(pkt)

    def serialization_ns(self, nbytes: int) -> float:
        return nbytes * self._ns_per_byte

    # -- egress fast path -------------------------------------------------
    def _start(self, pkt: Packet, done: Event) -> None:
        self._busy = True
        self._cur_pkt = pkt
        self._cur_done = done
        ser = pkt.size * self._ns_per_byte
        self.sim._call_soon1(self._tx_done, ser, delay=ser)

    def _tx_done(self, ser: float) -> None:
        sim = self.sim
        pkt = self._cur_pkt
        done = self._cur_done
        assert pkt is not None and done is not None
        self.tx_packets += 1
        self.tx_bytes += pkt.size
        self.busy_ns += ser
        tel = sim.telemetry
        if tel.enabled:
            t0 = sim.now - ser
            tel.span(
                f"{pkt.op} m{pkt.msg_id} {pkt.seq + 1}/{pkt.nseq}",
                pid="net",
                tid=self.owner_name,
                t0=t0,
                t1=sim.now,
                cat="net",
                trace=pkt.trace,
                args={"bytes": pkt.size, "queued_ns": t0 - pkt.enqueue_t},
            )
            gauge, busy, nbytes, npkts = self._handles.get(tel.metrics)
            busy.inc(ser)
            nbytes.inc(pkt.size)
            npkts.inc()
            gauge.set(sim.now, len(self._q))
        done.succeed(pkt)
        # Start serializing the next queued packet before dealing with
        # this one's fate on the wire (pipelined wire: propagation never
        # blocks the serializer).
        if self._q:
            nxt, nxt_done = self._q.popleft()
            self._start(nxt, nxt_done)
        else:
            self._busy = False
            self._cur_pkt = None
            self._cur_done = None
        peer = self.peer
        assert peer is not None
        faults = sim.faults
        if faults is not None:
            # Wire faults strike after serialization (the sender paid
            # the egress cost either way) and before propagation.
            verdict = faults.egress_verdict(self.owner_name, pkt)
            if verdict == "drop":
                return
            if verdict == "corrupt":
                pkt.corrupted = True
        sim._call_soon1(peer.receive, pkt, delay=self.latency_ns)

    def utilisation(self) -> float:
        return self.busy_ns / self.sim.now if self.sim.now > 0 else 0.0
