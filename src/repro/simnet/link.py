"""Links and ports: the serializing, store-and-forward wire model.

Each :class:`Port` owns a bounded egress queue that charges
serialization time (``bytes * 8 / bandwidth``) per packet, then delivers
the packet to the attached peer after the link propagation latency.  The
bounded queue is what creates *egress back-pressure*: a PsPIN handler
that forwards two packets per incoming packet (sPIN-PBT) ends up blocked
on the egress port, which is precisely the mechanism behind the paper's
observed IPC collapse (Table I, IPC 0.06 for PBT payload handlers).

The egress path is a fused callback chain rather than a server process:
``send`` starts serialization immediately when the wire is idle,
otherwise appends to a deque; a single ``tx-done`` kernel event per
packet fires the sender's completion, schedules the (closure-free)
delivery, and starts the next packet.  That is 3 heap events per packet
(tx-done, sender completion, delivery) versus the 5+ of the old
Store+process design, with identical simulated timestamps.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Protocol, Tuple

from ..telemetry.metrics import HandleCache
from .engine import Event, Simulator
from .packet import Packet, PacketTrain

__all__ = ["Port", "Endpoint", "gbps_to_ns_per_byte"]

#: packet ops whose serialization is the *ack leg* of a request — their
#: wire spans carry the "ack" latency-anatomy phase instead of "wire"
_ACK_OPS = frozenset(("ack", "nack", "rpc_resp"))


def gbps_to_ns_per_byte(gbps: float) -> float:
    """Serialization cost in ns/byte for a line rate in Gbit/s."""
    return 8.0 / gbps


class Endpoint(Protocol):
    """Anything that can terminate a link."""

    name: str

    def receive(self, pkt: Packet) -> None: ...


class Port:
    """A full-duplex network port with a serializing egress queue."""

    def __init__(
        self,
        sim: Simulator,
        owner_name: str,
        bandwidth_gbps: float,
        queue_packets: int = 64,
    ) -> None:
        self.sim = sim
        self.owner_name = owner_name
        self.bandwidth_gbps = bandwidth_gbps
        self._ns_per_byte = gbps_to_ns_per_byte(bandwidth_gbps)
        self.queue_packets = queue_packets
        #: packets accepted but not yet on the wire (excludes in-service)
        self._q: Deque[Tuple[Packet, Event]] = deque()
        self._busy = False
        self._cur_pkt: Optional[Packet] = None
        self._cur_done: Optional[Event] = None
        #: active coalesced packet train, if any (see try_send_train)
        self._train: Optional[PacketTrain] = None
        self.peer: Optional[Endpoint] = None
        self.latency_ns: float = 0.0
        # statistics
        self.tx_packets = 0
        self.tx_bytes = 0
        self.busy_ns = 0.0
        # Metric handles are resolved once per registry, not per packet
        # (the old per-packet f"link.{name}.queue_depth" formatting plus
        # dict lookup dominated the enabled-telemetry egress cost).
        san = sim.sanitizer
        if san is not None:
            san.adopt("port", self)
        name = owner_name
        self._handles = HandleCache(
            lambda m: (
                m.gauge(f"link.{name}.queue_depth"),
                m.counter(f"link.{name}.busy_ns"),
                m.counter(f"link.{name}.tx_bytes"),
                m.counter(f"link.{name}.tx_packets"),
            )
        )

    # -- wiring ----------------------------------------------------------
    def connect(self, peer: Endpoint, latency_ns: float) -> None:
        if self.peer is not None:
            raise RuntimeError(f"port of {self.owner_name} already connected")
        self.peer = peer
        self.latency_ns = latency_ns

    # -- sending ---------------------------------------------------------
    def send(self, pkt: Packet) -> Event:
        """Enqueue a packet for transmission.

        Returns an event that fires when the packet has been *fully
        serialized onto the wire* (not when delivered).  Yielding on it
        models a sender that blocks until egress accepts its data.
        """
        if self._train is not None:
            # Cross-traffic invalidates the train's closed-form schedule:
            # de-coalesce before this packet touches the queue so FIFO
            # order matches the per-packet path exactly.
            self._train_abort()
        sim = self.sim
        done = Event(sim)
        pkt.enqueue_t = sim.now
        if self._busy:
            self._q.append((pkt, done))
        else:
            self._start(pkt, done)
        tel = sim.telemetry
        if tel.enabled:
            self._handles.get(tel.metrics)[0].set(
                sim.now, len(self._q) + 1  # +1: the packet now in service
            )
        return done

    def try_send(self, pkt: Packet) -> Optional[Event]:
        """Non-blocking enqueue; None when the egress queue is full."""
        if self._train is not None:
            self._train_abort()
        # The in-service packet counts against capacity: with
        # queue_packets=1 an idle port accepts exactly one packet.
        if len(self._q) + self._busy >= self.queue_packets:
            return None
        return self.send(pkt)

    def serialization_ns(self, nbytes: int) -> float:
        return nbytes * self._ns_per_byte

    # -- egress fast path -------------------------------------------------
    def _start(self, pkt: Packet, done: Event) -> None:
        self._busy = True
        self._cur_pkt = pkt
        self._cur_done = done
        ser = pkt.size * self._ns_per_byte
        self.sim._call_soon1(self._tx_done, ser, delay=ser)

    def _tx_done(self, ser: float) -> None:
        sim = self.sim
        pkt = self._cur_pkt
        done = self._cur_done
        assert pkt is not None and done is not None
        self.tx_packets += 1
        self.tx_bytes += pkt.size
        self.busy_ns += ser
        tel = sim.telemetry
        if tel.enabled:
            t0 = sim.now - ser
            tel.span(
                f"{pkt.op} m{pkt.msg_id} {pkt.seq + 1}/{pkt.nseq}",
                pid="net",
                tid=self.owner_name,
                t0=t0,
                t1=sim.now,
                cat="net",
                trace=pkt.trace,
                args={"bytes": pkt.size, "queued_ns": t0 - pkt.enqueue_t},
                phase="ack" if pkt.op in _ACK_OPS else "wire",
            )
            gauge, busy, nbytes, npkts = self._handles.get(tel.metrics)
            busy.inc(ser)
            nbytes.inc(pkt.size)
            npkts.inc()
            gauge.set(sim.now, len(self._q))
        done.succeed(pkt)
        # Start serializing the next queued packet before dealing with
        # this one's fate on the wire (pipelined wire: propagation never
        # blocks the serializer).
        if self._q:
            nxt, nxt_done = self._q.popleft()
            self._start(nxt, nxt_done)
        else:
            self._busy = False
            self._cur_pkt = None
            self._cur_done = None
        peer = self.peer
        assert peer is not None
        faults = sim.faults
        if faults is not None:
            # Wire faults strike after serialization (the sender paid
            # the egress cost either way) and before propagation.
            verdict = faults.egress_verdict(self.owner_name, pkt)
            if verdict == "drop":
                return
            if verdict == "corrupt":
                pkt.corrupted = True
        sim._call_soon1(peer.receive, pkt, delay=self.latency_ns)

    # -- packet-train coalescing -----------------------------------------
    #
    # When a multi-packet burst hits an idle, fault-free port, its whole
    # wire schedule is a closed form; we schedule TWO heap events for the
    # entire burst (train tx-done at the last serialization end, train
    # delivery at the first arrival) instead of three per packet.  Per-
    # packet tx statistics and telemetry are applied lazily — at train
    # completion, or at the abort point when cross-traffic de-coalesces
    # the train — with the exact per-packet timestamps the slow path
    # would have produced.

    def try_send_train(
        self,
        pkts: List[Packet],
        avail: Optional[List[float]] = None,
        sender_event: bool = True,
        enq_push: Optional[List[float]] = None,
    ) -> Optional[PacketTrain]:
        """Coalesce ``pkts`` into one train if the port is uncontended.

        ``avail`` gives, per packet, when it becomes available at this
        port (a forwarding hop whose packets are still arriving); None
        means sender-paced (packet ``i+1`` is offered the instant ``i``
        finishes serializing, like the NIC's send loop).  ``enq_push``
        gives, per packet, when the slow path would have *pushed* the
        enqueue callback (the switch pushes ``out.send`` one traversal
        before it fires) — it decides whether an enqueue gauge sample
        precedes a tx-done sample landing on the same timestamp; None
        means enqueues are pushed at their fire time and lose ties, like
        a sender resuming from the tx-done event.  Returns None — and
        sends nothing — when the closed form would not be valid: busy
        wire, queued packets, armed fault injector, coalescing disabled,
        or a peer that cannot consume trains.
        """
        sim = self.sim
        if (
            not sim.coalescing
            or sim.faults is not None
            or self._busy
            or self._q
            or len(pkts) < 2
            or self._train is not None
            or getattr(self.peer, "receive_train", None) is None
        ):
            return None
        now = sim.now
        npb = self._ns_per_byte
        lat = self.latency_ns
        s: List[float] = []
        done: List[float] = []
        arr: List[float] = []
        t = now
        for i, pkt in enumerate(pkts):
            start = t if avail is None else (avail[i] if avail[i] > t else t)
            pkt.enqueue_t = start if avail is None else avail[i]
            end = start + pkt.size * npb
            s.append(start)
            done.append(end)
            arr.append(end + lat)
            t = end
        st = PacketTrain(pkts, s, done, arr, avail=avail, enq_push=enq_push)
        if sender_event:
            st.ev = Event(sim)
        self._train = st
        self._busy = True
        # Absolute-time pushes: bit-identical to the incremental floats
        # the per-packet path produces (now + (t - now) can drift an ulp).
        sim._call_at1(self._train_tx_done, st, done[-1])
        sim._call_at1(self.peer.receive_train, st, arr[0])
        return st

    def _train_tx_done(self, st: PacketTrain) -> None:
        """The whole (uncut part of the) train has left the wire."""
        if st is not self._train:
            return  # aborted; the abort path owns the bookkeeping
        self._train = None
        self._apply_train_stats(st, st.cut)
        self._busy = False
        self._cur_pkt = None
        self._cur_done = None
        if st.ev is not None:
            st.ev.succeed(st.pkts[-1])

    def _train_abort(self) -> None:
        """De-coalesce the active train at the current instant.

        Already-serialized packets keep their (identical) timestamps; a
        packet mid-serialization finishes on the real wire clock and is
        still delivered by the train; everything later is cut from the
        train and re-enters the ordinary per-packet path — either
        re-queued here (if it already reached this hop) or re-sent by
        the original sender, which resumes its send loop at ``cut``.
        """
        st = self._train
        assert st is not None
        self._train = None
        sim = self.sim
        now = sim.now
        cut_old = st.cut
        c = st.applied
        while c < cut_old and st.done[c] <= now:
            c += 1
        self._apply_train_stats(st, c)
        if c < cut_old and st.s[c] <= now:
            # Packet c is mid-serialization: it completes at done[c] on
            # the real clock and the train still delivers it.
            st.cut = c + 1
            self._busy = True
            self._cur_pkt = st.pkts[c]
            self._cur_done = None
            tel = sim.telemetry
            if tel.enabled:
                if st.enq_depth is None:
                    self._compute_train_depths(st)
                enq_t = st.avail if st.avail is not None else st.s
                self._handles.get(tel.metrics)[0].set(enq_t[c], st.enq_depth[c])
            sim._call_at1(self._train_cur_done, (st, c), st.done[c])
        else:
            # Nothing in service (a gap before the next available packet,
            # or the uncut train already drained): free the wire now.
            st.cut = min(cut_old, c)
            self._busy = False
            self._cur_pkt = None
            self._cur_done = None
            if st.ev is not None and not st.ev.triggered:
                # sender-paced: wake the sender so it resumes its
                # per-packet loop at ``cut``
                st.ev.succeed(None)
        if st.avail is not None:
            # Forwarding hop: packets that already reached this port go
            # back into the real queue ahead of the competing sender (as
            # FIFO demands); not-yet-arrived ones re-enter via send() at
            # their availability times.
            for j in range(st.cut, min(cut_old, st.have)):
                if st.avail[j] <= now:
                    self.send(st.pkts[j])
                else:
                    sim._call_at1(self._train_late_send, (st, j), st.avail[j])
        if st.on_abort is not None:
            st.on_abort(st)

    def _train_cur_done(self, arg: Tuple[PacketTrain, int]) -> None:
        """The in-service packet of an aborted train finished serializing.

        Mirrors ``_tx_done`` minus delivery (the train still carries the
        packet to the peer) and minus fault checks (trains never form
        with an armed injector).
        """
        st, c = arg
        pkt = st.pkts[c]
        ser = pkt.size * self._ns_per_byte
        tel = self.sim.telemetry
        self.tx_packets += 1
        self.tx_bytes += pkt.size
        self.busy_ns += ser
        if tel.enabled:
            t0 = st.done[c] - ser
            tel.span(
                f"{pkt.op} m{pkt.msg_id} {pkt.seq + 1}/{pkt.nseq}",
                pid="net",
                tid=self.owner_name,
                t0=t0,
                t1=st.done[c],
                cat="net",
                trace=pkt.trace,
                args={"bytes": pkt.size, "queued_ns": t0 - pkt.enqueue_t},
                phase="ack" if pkt.op in _ACK_OPS else "wire",
            )
            gauge, busy, nbytes, npkts = self._handles.get(tel.metrics)
            busy.inc(ser)
            nbytes.inc(pkt.size)
            npkts.inc()
            gauge.set(self.sim.now, len(self._q))
        st.applied = c + 1
        if st.ev is not None:
            st.ev.succeed(pkt)
        if self._q:
            nxt, nxt_done = self._q.popleft()
            self._start(nxt, nxt_done)
        else:
            self._busy = False
            self._cur_pkt = None
            self._cur_done = None

    def _train_late_send(self, arg: Tuple[PacketTrain, int]) -> None:
        st, j = arg
        if j >= st.have:
            return  # an upstream abort cut it; the origin re-sends it
        self.send(st.pkts[j])

    def _apply_train_stats(self, st: PacketTrain, upto: int) -> None:
        """Apply per-packet tx statistics/telemetry for ``[applied, upto)``
        with the exact timestamps the per-packet path would have used."""
        a = st.applied
        if upto <= a:
            return
        st.applied = upto
        sim = self.sim
        tel = sim.telemetry
        npb = self._ns_per_byte
        pkts = st.pkts
        done = st.done
        if not tel.enabled:
            for i in range(a, upto):
                size = pkts[i].size
                self.tx_packets += 1
                self.tx_bytes += size
                self.busy_ns += size * npb
            return
        if st.enq_depth is None:
            self._compute_train_depths(st)
        gauge, busy, nbytes, npkts = self._handles.get(tel.metrics)
        enq_t = st.avail if st.avail is not None else st.s
        ep = st.enq_push
        s = st.s
        # Queue-depth samples, merged into time order (enqueue samples of
        # later packets can precede tx-done samples of earlier ones when
        # a slower egress builds a queue).  Timestamp ties replay heap
        # order: the enqueue callback wins only if it was pushed before
        # packet ``di``'s tx-done callback (pushed at serialization start).
        ei, di = a, a
        while di < upto:
            if ei < upto and (
                enq_t[ei] < done[di]
                or (enq_t[ei] == done[di] and ep is not None and ep[ei] < s[di])
            ):
                gauge.set(enq_t[ei], st.enq_depth[ei])
                ei += 1
            else:
                gauge.set(done[di], st.done_depth[di])
                di += 1
        for i in range(a, upto):
            pkt = pkts[i]
            ser = pkt.size * npb
            self.tx_packets += 1
            self.tx_bytes += pkt.size
            self.busy_ns += ser
            t0 = done[i] - ser
            tel.span(
                f"{pkt.op} m{pkt.msg_id} {pkt.seq + 1}/{pkt.nseq}",
                pid="net",
                tid=self.owner_name,
                t0=t0,
                t1=done[i],
                cat="net",
                trace=pkt.trace,
                args={"bytes": pkt.size, "queued_ns": t0 - pkt.enqueue_t},
                phase="ack" if pkt.op in _ACK_OPS else "wire",
            )
            busy.inc(ser)
            nbytes.inc(pkt.size)
            npkts.inc()

    def _compute_train_depths(self, st: PacketTrain) -> None:
        """Queue-depth gauge values per packet, matching what the slow
        path samples at enqueue (depth including self + in-service) and
        at tx-done (packets waiting, next not yet popped)."""
        n = len(st.pkts)
        # Packets at or past ``have`` never reach this hop on the train's
        # schedule (an upstream abort re-routes them through the ordinary
        # path), so their scheduled enqueues must not be counted.
        n_enq = min(n, st.have)
        enq_t = st.avail if st.avail is not None else st.s
        ep = st.enq_push
        s = st.s
        done = st.done
        enq_depth = [0] * n
        done_depth = [0] * n
        # Ties between an enqueue and a tx-done on the same timestamp
        # follow heap push order: the enqueue fires first only when its
        # callback was pushed before the tx-done's (at serialization
        # start); a sender-paced enqueue (ep None) always fires after.
        lo = 0
        for i in range(n):
            while lo < n and (
                done[lo] < enq_t[i]
                or (done[lo] == enq_t[i] and (ep is None or ep[i] >= s[lo]))
            ):
                lo += 1
            enq_depth[i] = i - lo + 1
        hi = 0
        for i in range(n):
            while hi < n_enq and (
                enq_t[hi] < done[i]
                or (enq_t[hi] == done[i] and ep is not None and ep[hi] < s[i])
            ):
                hi += 1
            d = hi - 1 - i
            done_depth[i] = d if d > 0 else 0
        st.enq_depth = enq_depth
        st.done_depth = done_depth

    def utilisation(self) -> float:
        return self.busy_ns / self.sim.now if self.sim.now > 0 else 0.0
