"""Packets and message segmentation.

A *message* (e.g. one RDMA write) is carried by a stream of packets.
Following the paper (§III-A): the first packet of a message carries the
DFS-specific headers; all packets carry a transport (RDMA) header; the
network guarantees the header packet is delivered first and the
completion packet last (§II-B1, sPIN requirement) — our in-order links
satisfy this trivially.

Payloads are real ``numpy`` ``uint8`` arrays (views into the message
buffer, never copies — see the hpc guide note on views), so every policy
is functionally checkable end to end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

__all__ = [
    "Packet",
    "PacketTrain",
    "Message",
    "segment_message",
    "TRANSPORT_HEADER_BYTES",
    "reset_id_state",
    "register_id_reset",
]

#: Bytes of transport framing per packet (Ethernet+IP+UDP+BTH-equivalent).
TRANSPORT_HEADER_BYTES = 64

_pkt_ids = itertools.count()
_msg_ids = itertools.count()

#: extra reset hooks registered by other modules holding id state that
#: must restart with every simulation (e.g. rdma.nic's group-request
#: counter) — a registry avoids an import cycle back into those modules
_id_reset_hooks: List[Callable[[], None]] = []


def register_id_reset(hook: Callable[[], None]) -> None:
    """Register ``hook()`` to be invoked by :func:`reset_id_state`."""
    _id_reset_hooks.append(hook)


def reset_id_state() -> None:
    """Restart packet/message id allocation and drop memoized derived ids.

    The id counters and especially the ``(parent, salt)`` derived-id memo
    are module-level, so a long sweep (or a pool worker reusing its
    interpreter across points) otherwise accumulates every entry forever
    and produces ids that depend on what ran before — breaking both
    memory and determinism.  ``build_testbed`` calls this at the start of
    every simulation, and runner workers call it between sweep points.
    """
    global _pkt_ids, _msg_ids
    _pkt_ids = itertools.count()
    _msg_ids = itertools.count()
    _derived_ids.clear()
    for hook in _id_reset_hooks:
        hook()


@dataclass(slots=True)
class Packet:
    """One network packet.

    ``size`` is the wire size in bytes (transport header + DFS headers on
    the first packet + payload).  ``payload`` is a zero-copy view into the
    originating message buffer (may be ``None`` for pure control packets).
    """

    src: str
    dst: str
    op: str                       # e.g. "write", "read_req", "ack", "rpc"
    msg_id: int
    seq: int                      # packet index within the message
    nseq: int                     # total packets in the message
    payload: Optional[np.ndarray] = None
    headers: dict[str, Any] = field(default_factory=dict)
    header_bytes: int = 0         # DFS-specific header bytes (first pkt only)
    #: byte offset of this packet's payload within the message — carried
    #: on the wire (like RDMA BTH/RETH offsets) so receivers can place
    #: payloads without per-message counters
    payload_offset: int = 0
    pkt_id: int = field(default_factory=lambda: next(_pkt_ids))
    # Filled in by the network while in flight:
    enqueue_t: float = 0.0
    #: set by the fault injector: the packet arrives but fails the
    #: receiving NIC's CRC check and is dropped there
    corrupted: bool = False
    #: request trace context (:class:`repro.telemetry.TraceContext`) —
    #: set when telemetry is enabled so spans emitted along the packet's
    #: path (wire, handlers, host commit) link back to the DFS request
    trace: Optional[Any] = None

    @property
    def payload_bytes(self) -> int:
        return 0 if self.payload is None else int(self.payload.nbytes)

    @property
    def size(self) -> int:
        return TRANSPORT_HEADER_BYTES + self.header_bytes + self.payload_bytes

    @property
    def is_header(self) -> bool:
        return self.seq == 0

    @property
    def is_completion(self) -> bool:
        return self.seq == self.nseq - 1

    def child(self, **overrides: Any) -> "Packet":
        """A derived packet (e.g. a forwarded copy) sharing the payload view."""
        kw = dict(
            src=self.src,
            dst=self.dst,
            op=self.op,
            msg_id=self.msg_id,
            seq=self.seq,
            nseq=self.nseq,
            payload=self.payload,
            headers=dict(self.headers),
            header_bytes=self.header_bytes,
            payload_offset=self.payload_offset,
            trace=self.trace,
        )
        kw.update(overrides)
        return Packet(**kw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.op} {self.src}->{self.dst} "
            f"msg={self.msg_id} {self.seq + 1}/{self.nseq} {self.size}B>"
        )


class PacketTrain:
    """A coalesced burst of packets with a precomputed wire schedule.

    When a multi-packet message hits an *uncontended* port (idle wire,
    empty queue, no fault injector armed), the whole burst's per-packet
    timestamps are a closed form: ``s[i] = max(done[i-1], avail[i])``,
    ``done[i] = s[i] + ser_i``, ``arr[i] = done[i] + latency``.  The port
    then schedules ONE train event instead of three heap events per
    packet, and every consumer walks the precomputed arrays — invoking
    the same per-packet effects at the same simulated times.

    De-coalescing: any competing ``send()`` on the owning port aborts the
    train — packets already serialized keep their (identical) schedule,
    the in-flight packet finishes on the real wire clock, and everything
    later re-enters the ordinary per-packet path.  ``cut`` is the first
    index NOT delivered by this train (consumers must re-check it before
    acting on an index); ``have`` is the first index that never reached
    this hop at all (an upstream abort propagates it via ``on_abort``),
    so an aborting port only re-queues packets it actually holds.
    """

    __slots__ = (
        "pkts", "s", "done", "arr", "avail", "enq_push", "cut", "have",
        "applied", "ev", "on_abort", "enq_depth", "done_depth",
    )

    def __init__(self, pkts: "List[Packet]", s: List[float], done: List[float],
                 arr: List[float], avail: Optional[List[float]] = None,
                 enq_push: Optional[List[float]] = None) -> None:
        self.pkts = pkts
        self.s = s              # serialization start, per packet
        self.done = done        # serialization end (sender completion)
        self.arr = arr          # arrival at the peer
        self.avail = avail      # when each packet reached this hop (None
                                # for sender-paced trains: avail == s)
        self.enq_push = enq_push  # when the slow path would have PUSHED
                                # each enqueue callback (tie-breaks gauge
                                # sample order at equal timestamps; None:
                                # enqueues fire after tx-dones at ties)
        self.cut = len(pkts)    # first index NOT delivered by the train
        self.have = len(pkts)   # first index never seen at this hop
        self.applied = 0        # tx stats applied up to this index
        self.ev = None          # sender-completion event (sender-paced)
        self.on_abort = None    # downstream cut propagation hook
        self.enq_depth = None   # per-packet queue-depth gauge samples
        self.done_depth = None  # (populated only when telemetry is on)

    def __len__(self) -> int:
        return len(self.pkts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.pkts[0]
        return (
            f"<PacketTrain {p.op} {p.src}->{p.dst} msg={p.msg_id} "
            f"n={len(self.pkts)} cut={self.cut}>"
        )


@dataclass(slots=True)
class Message:
    """A logical message prior to segmentation."""

    src: str
    dst: str
    op: str
    data: Optional[np.ndarray] = None
    headers: dict[str, Any] = field(default_factory=dict)
    header_bytes: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))


def fresh_msg_id() -> int:
    """Allocate a globally unique message id."""
    return next(_msg_ids)


_derived_ids: dict = {}


def derived_msg_id(parent: int, salt: Any) -> int:
    """A msg id derived *stably* from ``(parent, salt)``.

    Forwarding policies (replication fan-out, EC parity streams) need
    fresh msg ids for the streams they originate — but when the parent
    message is retransmitted end-to-end, the re-forwarded streams must
    reuse the SAME ids so receiver-side duplicate suppression works.
    """
    key = (parent, salt)
    mid = _derived_ids.get(key)
    if mid is None:
        mid = _derived_ids[key] = next(_msg_ids)
    return mid


def as_payload(data: Any) -> np.ndarray:
    """Coerce bytes-like input to a ``uint8`` numpy array without copying
    when the input is already a ``uint8`` array."""
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            raise TypeError(f"payload must be uint8, got {data.dtype}")
        return data
    return np.frombuffer(bytes(data), dtype=np.uint8)


def segment_message(msg: Message, mtu: int) -> list[Packet]:
    """Split a message into MTU-sized packets.

    ``mtu`` bounds ``dfs_headers + payload`` per packet (transport framing
    is extra, as on real RoCE links).  The paper assumes request headers
    always fit in a single packet (§III-A); we enforce that.

    The first packet carries the DFS headers, so its payload share is
    reduced by ``msg.header_bytes``; subsequent packets are pure payload.
    Packets carrying *additional* trailing bytes when the MTU does not
    divide the message (the "outlier" packets of Fig. 16) simply end up
    shorter — exactly like the paper's traffic.
    """
    if msg.header_bytes > mtu:
        raise ValueError(
            f"DFS headers ({msg.header_bytes} B) must fit in one MTU ({mtu} B)"
        )
    data = msg.data
    total = 0 if data is None else int(data.nbytes)

    # Payload budget of the first packet and of the rest.
    first_budget = mtu - msg.header_bytes
    rest_budget = mtu

    # Compute packet count.
    if total <= first_budget:
        nseq = 1
    else:
        nseq = 1 + -(-(total - first_budget) // rest_budget)

    # Trace context travels on *every* packet (like per-packet transport
    # headers) so spans deep in the stack can link to the request even
    # when packets of one message take different paths.
    tctx = msg.headers.get("trace")
    pkts: list[Packet] = []
    off = 0
    for seq in range(nseq):
        budget = first_budget if seq == 0 else rest_budget
        take = min(budget, total - off)
        payload = None
        if data is not None and take > 0:
            payload = data[off : off + take]
        pkts.append(
            Packet(
                src=msg.src,
                dst=msg.dst,
                op=msg.op,
                msg_id=msg.msg_id,
                seq=seq,
                nseq=nseq,
                payload=payload,
                headers=dict(msg.headers) if seq == 0 else {},
                header_bytes=msg.header_bytes if seq == 0 else 0,
                payload_offset=off,
                trace=tctx,
            )
        )
        off += take
    return pkts
