"""Topology: switches and the network builder.

The paper's SST setup is a flat 400 Gbit/s network with 20 ns link
latency and 2048 B MTU (§III-D).  We model it as a single output-queued
switch in a star topology (the default), with per-port serialization at
line rate and a fixed switch traversal latency.  Multi-switch topologies
can be composed for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..telemetry.metrics import HandleCache
from .engine import Simulator
from .link import Port
from .packet import Packet, PacketTrain

__all__ = ["NetConfig", "Switch", "Network"]


@dataclass(frozen=True)
class NetConfig:
    """Network parameters (paper defaults, §III-D)."""

    bandwidth_gbps: float = 400.0
    mtu: int = 2048
    link_latency_ns: float = 20.0
    switch_latency_ns: float = 350.0
    port_queue_packets: int = 4096


class _SwitchPortShim:
    """Receives packets arriving at one switch port and forwards them."""

    def __init__(self, switch: "Switch", name: str) -> None:
        self.switch = switch
        self.name = name

    def receive(self, pkt: Packet) -> None:
        self.switch.forward(pkt)

    def receive_train(self, st: PacketTrain) -> None:
        self.switch.forward_train(st)


class Switch:
    """An output-queued crossbar switch.

    Forwarding charges ``switch_latency_ns`` and then enqueues the packet
    on the destination's output port, where it is serialized at line
    rate.  Output queueing means congestion appears exactly where it does
    in the paper's experiments: on the egress port towards a hot storage
    node.
    """

    def __init__(self, sim: Simulator, cfg: NetConfig, name: str = "switch") -> None:
        self.sim = sim
        self.cfg = cfg
        self.name = name
        self._out_ports: Dict[str, Port] = {}
        self.rx_packets = 0
        self._handles = HandleCache(
            lambda m: (
                m.counter(f"switch.{name}.rx_packets"),
                m.counter(f"switch.{name}.no_route_drops"),
            )
        )

    def attach(self, endpoint: Any) -> Port:
        """Attach an endpoint; returns the *endpoint's* port (towards us)."""
        node_name = endpoint.name
        if node_name in self._out_ports:
            raise ValueError(f"{node_name} already attached to {self.name}")
        # Switch-side output port towards the endpoint.
        out = Port(
            self.sim,
            f"{self.name}->{node_name}",
            self.cfg.bandwidth_gbps,
            queue_packets=self.cfg.port_queue_packets,
        )
        out.connect(endpoint, self.cfg.link_latency_ns)
        self._out_ports[node_name] = out
        # Endpoint-side port towards the switch.
        up = Port(
            self.sim,
            f"{node_name}->{self.name}",
            self.cfg.bandwidth_gbps,
            queue_packets=self.cfg.port_queue_packets,
        )
        up.connect(_SwitchPortShim(self, f"{self.name}<-{node_name}"), self.cfg.link_latency_ns)
        return up

    def forward(self, pkt: Packet) -> None:
        self.rx_packets += 1
        out = self._out_ports.get(pkt.dst)
        tel = self.sim.telemetry
        if tel.enabled:
            rx, drops = self._handles.get(tel.metrics)
            rx.inc()
            if out is None:
                drops.inc()
        if out is None:
            raise KeyError(f"{self.name}: no route to {pkt.dst!r}")
        # Fixed traversal latency, then output queueing (closure-free).
        self.sim._call_soon1(out.send, pkt, delay=self.cfg.switch_latency_ns)

    def forward_train(self, st: PacketTrain) -> None:
        """Forward a coalesced train: one traversal charge for the burst.

        Runs at the train's first arrival.  Re-coalesces onto the output
        port when possible (availability times = per-packet arrival +
        traversal latency); otherwise falls back to one ``out.send`` per
        packet at exactly the slow path's times.  An upstream abort
        propagates through ``on_abort``: packets the sender never put on
        the wire are un-counted here and cut from the downstream train —
        they will re-traverse the switch as ordinary packets when the
        sender re-sends them.
        """
        pkts = st.pkts
        k = st.cut  # packets this train actually delivers to us
        if k == 0:
            return
        out = self._out_ports.get(pkts[0].dst)
        if out is None:
            # Not a local egress (multi-tier routing, or genuinely no
            # route): de-coalesce into per-packet forward() calls at the
            # per-packet arrival times so subclass routing (ECMP over
            # uplinks, spine down-routing) sees the exact slow-path
            # sequence — and routing failures raise where they would.
            for j in range(k):
                self.sim._call_at1(self._forward_train_slow_step, (st, j), st.arr[j])
            return
        self.rx_packets += k
        tel = self.sim.telemetry
        if tel.enabled:
            self._handles.get(tel.metrics)[0].inc(k)
        sl = self.cfg.switch_latency_ns
        down: Optional[PacketTrain] = None
        if k == len(pkts):
            avail = [a + sl for a in st.arr]
            # enq_push = upstream arrival: the slow path pushes each
            # ``out.send`` callback when ``forward`` runs, one traversal
            # latency before it fires.
            down = out.try_send_train(
                pkts, avail=avail, sender_event=False, enq_push=st.arr
            )
        if down is None:
            # De-coalesce at this hop: one event per packet, at the same
            # times the per-packet path would use (arrival + traversal).
            for j in range(k):
                self.sim._call_at1(
                    self._forward_train_step, (st, j, out), st.arr[j] + sl
                )
        counted = [k]

        def _on_upstream_abort(u_st: PacketTrain) -> None:
            k2 = u_st.cut
            if k2 < counted[0]:
                lost = counted[0] - k2
                counted[0] = k2
                self.rx_packets -= lost
                tel2 = self.sim.telemetry
                if tel2.enabled:
                    self._handles.get(tel2.metrics)[0].inc(-lost)
            if down is not None:
                if k2 < down.have:
                    down.have = k2
                    # Cached queue-depth samples counted the cut packets'
                    # scheduled enqueues, which now never happen on this
                    # train; recompute lazily against the reduced ``have``
                    # (already-applied samples predate the upstream abort
                    # and so cannot have seen the cut enqueues).
                    down.enq_depth = down.done_depth = None
                if k2 < down.cut:
                    down.cut = k2

        st.on_abort = _on_upstream_abort

    def _forward_train_step(self, arg: Tuple[Any, int, Port]) -> None:
        st, j, out = arg
        if j >= st.cut:
            return  # cut upstream; the origin re-sends it the slow way
        out.send(st.pkts[j])

    def _forward_train_slow_step(self, arg: Tuple[Any, int]) -> None:
        st, j = arg
        if j >= st.cut:
            return
        self.forward(st.pkts[j])

    def out_port(self, node_name: str) -> Port:
        return self._out_ports[node_name]


class Network:
    """A star network: every endpoint hangs off one switch.

    Endpoints must expose ``name`` and ``receive(pkt)``; ``register``
    hands them back their uplink :class:`Port`.
    """

    def __init__(self, sim: Simulator, cfg: Optional[NetConfig] = None) -> None:
        self.sim = sim
        self.cfg = cfg or NetConfig()
        self.switch = Switch(sim, self.cfg)
        self.endpoints: Dict[str, object] = {}

    def register(self, endpoint: Any) -> Port:
        if endpoint.name in self.endpoints:
            raise ValueError(f"duplicate endpoint name {endpoint.name!r}")
        self.endpoints[endpoint.name] = endpoint
        return self.switch.attach(endpoint)

    def min_rtt_ns(self) -> float:
        """Lower-bound round trip for a tiny request and response
        (propagation + switch traversal only; serialization excluded)."""
        one_way = 2 * self.cfg.link_latency_ns + self.cfg.switch_latency_ns
        return 2 * one_way
