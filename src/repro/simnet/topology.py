"""Multi-switch topologies.

The paper's SST configuration is a flat network (§III-D), which
:class:`~repro.simnet.network.Network` models as one switch.  Real
deployments hang storage and compute off different leaves; this module
adds a two-tier **leaf–spine** fabric so sensitivity studies can vary
hop counts and uplink oversubscription:

* endpoints attach to leaf switches;
* each leaf connects to every spine with ``uplink_gbps`` links;
* traffic within a leaf switches locally (1 switch hop); cross-leaf
  traffic takes leaf → spine → leaf (3 hops) and shares the uplinks —
  an oversubscribed fabric throttles cross-leaf incast exactly like the
  real thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .engine import Simulator
from .link import Port
from .network import NetConfig, Switch
from .packet import Packet

__all__ = ["LeafSpineNetwork", "Topology", "PartitionSpec", "star_topology"]


# --------------------------------------------------------------------------
# Graph-level topology description + partitioning (repro.simnet.parallel)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionSpec:
    """A validated k-way cut of a :class:`Topology`.

    ``ranks`` lists every endpoint with its partition rank, in
    registration order — the deterministic basis for cross-partition
    message ordering.  ``lookahead_ns`` is the minimum latency any
    packet spends crossing the cut (here: one switch traversal), i.e.
    the conservative-window lookahead of the parallel engine.
    """

    k: int
    ranks: Tuple[Tuple[str, int], ...]
    lookahead_ns: float

    def rank_of(self, name: str, default: int = 0) -> int:
        return self._rank_map.get(name, default)

    def members(self, rank: int) -> List[str]:
        return [n for n, r in self.ranks if r == rank]

    @property
    def _rank_map(self) -> Dict[str, int]:
        m = self.__dict__.get("_rank_map_cache")
        if m is None:
            m = dict(self.ranks)
            object.__setattr__(self, "_rank_map_cache", m)
        return m


@dataclass
class Topology:
    """Abstract star-graph description: endpoint subtrees + cut links.

    Every endpoint (a host/NIC subtree) hangs off the switch core over
    one link; :meth:`partition` cuts the graph *inside* the switch so
    each endpoint subtree — including its local switch out-port — lands
    wholly in one partition.  Direct endpoint↔endpoint links (no switch
    hop between them) cannot be cut and must be co-partitioned.
    """

    cfg: NetConfig = field(default_factory=NetConfig)
    endpoints: List[str] = field(default_factory=list)
    #: (a, b, latency_ns); b == "switch" for the standard star links
    links: List[Tuple[str, str, float]] = field(default_factory=list)

    def add_endpoint(self, name: str) -> None:
        if name in self.endpoints:
            raise ValueError(f"duplicate endpoint {name!r} in topology")
        self.endpoints.append(name)
        self.links.append((name, "switch", self.cfg.link_latency_ns))

    def add_link(self, a: str, b: str, latency_ns: Optional[float] = None) -> None:
        """An extra direct link between two registered endpoints."""
        for end in (a, b):
            if end != "switch" and end not in self.endpoints:
                raise ValueError(
                    f"link {a}<->{b} references unknown endpoint {end!r}; "
                    f"add_endpoint() it first"
                )
        self.links.append((a, b, self.cfg.link_latency_ns
                           if latency_ns is None else latency_ns))

    def partition(self, k: int, assignment: Optional[Dict[str, int]] = None) -> PartitionSpec:
        """Cut the graph into ``k`` partitions at the switch core.

        Default assignment: contiguous blocks in registration order.
        An explicit ``assignment`` maps every endpoint to a rank in
        ``range(k)``; partial maps, empty partitions, and cuts through
        direct endpoint↔endpoint links all raise ``ValueError`` with a
        message naming the offender.
        """
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ValueError(f"partition count must be a positive integer, got {k!r}")
        n = len(self.endpoints)
        if n == 0:
            raise ValueError("cannot partition an empty topology (no endpoints)")
        if k > n:
            raise ValueError(
                f"k={k} partitions exceed the {n} endpoint(s) in the topology; "
                f"every partition needs at least one endpoint subtree"
            )
        if assignment is None:
            ranks = tuple(
                (name, (i * k) // n) for i, name in enumerate(self.endpoints)
            )
        else:
            missing = [name for name in self.endpoints if name not in assignment]
            if missing:
                raise ValueError(
                    f"partition assignment orphans link "
                    f"{missing[0]}<->switch: endpoint {missing[0]!r} has no partition"
                )
            unknown = sorted(set(assignment) - set(self.endpoints))
            if unknown:
                raise ValueError(
                    f"partition assignment names unknown endpoint {unknown[0]!r}"
                )
            for name in self.endpoints:
                r = assignment[name]
                if not isinstance(r, int) or r < 0 or r >= k:
                    raise ValueError(
                        f"endpoint {name!r} assigned to partition {r!r}, "
                        f"outside range(0, {k})"
                    )
            ranks = tuple((name, assignment[name]) for name in self.endpoints)
        rank_map = dict(ranks)
        used = {r for _, r in ranks}
        empty = sorted(set(range(k)) - used)
        if empty:
            raise ValueError(
                f"partition {empty[0]} would be empty; every partition "
                f"needs at least one endpoint subtree"
            )
        # a direct (switch-less) link has no lookahead-sized hop to cut at
        for a, b, _lat in self.links:
            if a != "switch" and b != "switch" and rank_map[a] != rank_map[b]:
                raise ValueError(
                    f"partitioning would cut the direct link {a}<->{b} "
                    f"(partitions {rank_map[a]} and {rank_map[b]}); direct "
                    f"links cannot cross a partition boundary"
                )
        return PartitionSpec(k=k, ranks=ranks,
                             lookahead_ns=self.cfg.switch_latency_ns)


def star_topology(names: List[str], cfg: Optional[NetConfig] = None) -> Topology:
    """The standard testbed shape: every endpoint one link from the switch."""
    topo = Topology(cfg=cfg or NetConfig())
    for name in names:
        topo.add_endpoint(name)
    return topo


class _LeafSwitch(Switch):
    """A leaf: local endpoints plus uplinks to every spine."""

    def __init__(self, sim: Simulator, cfg: NetConfig, name: str, fabric: "LeafSpineNetwork") -> None:
        super().__init__(sim, cfg, name=name)
        self.fabric = fabric
        self.uplinks: List[Port] = []
        self._rr = 0

    def forward(self, pkt: Packet) -> None:
        self.rx_packets += 1
        if pkt.dst in self._out_ports:
            out = self._out_ports[pkt.dst]
            self.sim._call_soon1(out.send, pkt, delay=self.cfg.switch_latency_ns)
            return
        # cross-leaf: ECMP round robin over the spine uplinks
        if not self.uplinks:
            raise KeyError(f"{self.name}: no route to {pkt.dst!r}")
        up = self.uplinks[self._rr % len(self.uplinks)]
        self._rr += 1
        self.sim._call_soon1(up.send, pkt, delay=self.cfg.switch_latency_ns)


class _SpineSwitch(Switch):
    """A spine: routes down to the leaf owning the destination."""

    def __init__(self, sim: Simulator, cfg: NetConfig, name: str, fabric: "LeafSpineNetwork") -> None:
        super().__init__(sim, cfg, name=name)
        self.fabric = fabric
        self.downlinks: Dict[str, Port] = {}  # leaf name -> port

    def forward(self, pkt: Packet) -> None:
        self.rx_packets += 1
        leaf = self.fabric.leaf_of.get(pkt.dst)
        if leaf is None:
            raise KeyError(f"{self.name}: no route to {pkt.dst!r}")
        down = self.downlinks[leaf]
        self.sim._call_soon1(down.send, pkt, delay=self.cfg.switch_latency_ns)


class _Shim:
    def __init__(self, target: Any, name: str) -> None:
        self._t = target
        self.name = name

    def receive(self, pkt: Packet) -> None:
        self._t.forward(pkt)


class LeafSpineNetwork:
    """A two-tier fabric with configurable uplink oversubscription."""

    def __init__(
        self,
        sim: Simulator,
        cfg: Optional[NetConfig] = None,
        n_leaves: int = 2,
        n_spines: int = 1,
        uplink_gbps: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg or NetConfig()
        self.uplink_gbps = uplink_gbps or self.cfg.bandwidth_gbps
        self.leaves = [
            _LeafSwitch(sim, self.cfg, f"leaf{i}", self) for i in range(n_leaves)
        ]
        self.spines = [
            _SpineSwitch(sim, self.cfg, f"spine{j}", self) for j in range(n_spines)
        ]
        self.leaf_of: Dict[str, str] = {}
        self.endpoints: Dict[str, object] = {}
        # wire every leaf to every spine, both directions
        for leaf in self.leaves:
            for spine in self.spines:
                up = Port(sim, f"{leaf.name}->{spine.name}", self.uplink_gbps,
                          queue_packets=self.cfg.port_queue_packets)
                up.connect(_Shim(spine, spine.name), self.cfg.link_latency_ns)
                leaf.uplinks.append(up)
                down = Port(sim, f"{spine.name}->{leaf.name}", self.uplink_gbps,
                            queue_packets=self.cfg.port_queue_packets)
                down.connect(_Shim(leaf, leaf.name), self.cfg.link_latency_ns)
                spine.downlinks[leaf.name] = down

    def register(self, endpoint: Any, leaf: int = 0) -> Port:
        """Attach an endpoint to a given leaf; returns its uplink port."""
        if endpoint.name in self.endpoints:
            raise ValueError(f"duplicate endpoint name {endpoint.name!r}")
        self.endpoints[endpoint.name] = endpoint
        self.leaf_of[endpoint.name] = self.leaves[leaf].name
        return self.leaves[leaf].attach(endpoint)

    @property
    def switch(self) -> Switch:  # Network-compat shim for code that pokes .switch
        return self.leaves[0]
