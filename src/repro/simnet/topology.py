"""Multi-switch topologies.

The paper's SST configuration is a flat network (§III-D), which
:class:`~repro.simnet.network.Network` models as one switch.  Real
deployments hang storage and compute off different leaves; this module
adds a two-tier **leaf–spine** fabric so sensitivity studies can vary
hop counts and uplink oversubscription:

* endpoints attach to leaf switches;
* each leaf connects to every spine with ``uplink_gbps`` links;
* traffic within a leaf switches locally (1 switch hop); cross-leaf
  traffic takes leaf → spine → leaf (3 hops) and shares the uplinks —
  an oversubscribed fabric throttles cross-leaf incast exactly like the
  real thing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .engine import Simulator
from .link import Port
from .network import NetConfig, Switch
from .packet import Packet

__all__ = ["LeafSpineNetwork"]


class _LeafSwitch(Switch):
    """A leaf: local endpoints plus uplinks to every spine."""

    def __init__(self, sim: Simulator, cfg: NetConfig, name: str, fabric: "LeafSpineNetwork") -> None:
        super().__init__(sim, cfg, name=name)
        self.fabric = fabric
        self.uplinks: List[Port] = []
        self._rr = 0

    def forward(self, pkt: Packet) -> None:
        self.rx_packets += 1
        if pkt.dst in self._out_ports:
            out = self._out_ports[pkt.dst]
            self.sim._call_soon1(out.send, pkt, delay=self.cfg.switch_latency_ns)
            return
        # cross-leaf: ECMP round robin over the spine uplinks
        if not self.uplinks:
            raise KeyError(f"{self.name}: no route to {pkt.dst!r}")
        up = self.uplinks[self._rr % len(self.uplinks)]
        self._rr += 1
        self.sim._call_soon1(up.send, pkt, delay=self.cfg.switch_latency_ns)


class _SpineSwitch(Switch):
    """A spine: routes down to the leaf owning the destination."""

    def __init__(self, sim: Simulator, cfg: NetConfig, name: str, fabric: "LeafSpineNetwork") -> None:
        super().__init__(sim, cfg, name=name)
        self.fabric = fabric
        self.downlinks: Dict[str, Port] = {}  # leaf name -> port

    def forward(self, pkt: Packet) -> None:
        self.rx_packets += 1
        leaf = self.fabric.leaf_of.get(pkt.dst)
        if leaf is None:
            raise KeyError(f"{self.name}: no route to {pkt.dst!r}")
        down = self.downlinks[leaf]
        self.sim._call_soon1(down.send, pkt, delay=self.cfg.switch_latency_ns)


class _Shim:
    def __init__(self, target: Any, name: str) -> None:
        self._t = target
        self.name = name

    def receive(self, pkt: Packet) -> None:
        self._t.forward(pkt)


class LeafSpineNetwork:
    """A two-tier fabric with configurable uplink oversubscription."""

    def __init__(
        self,
        sim: Simulator,
        cfg: Optional[NetConfig] = None,
        n_leaves: int = 2,
        n_spines: int = 1,
        uplink_gbps: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg or NetConfig()
        self.uplink_gbps = uplink_gbps or self.cfg.bandwidth_gbps
        self.leaves = [
            _LeafSwitch(sim, self.cfg, f"leaf{i}", self) for i in range(n_leaves)
        ]
        self.spines = [
            _SpineSwitch(sim, self.cfg, f"spine{j}", self) for j in range(n_spines)
        ]
        self.leaf_of: Dict[str, str] = {}
        self.endpoints: Dict[str, object] = {}
        # wire every leaf to every spine, both directions
        for leaf in self.leaves:
            for spine in self.spines:
                up = Port(sim, f"{leaf.name}->{spine.name}", self.uplink_gbps,
                          queue_packets=self.cfg.port_queue_packets)
                up.connect(_Shim(spine, spine.name), self.cfg.link_latency_ns)
                leaf.uplinks.append(up)
                down = Port(sim, f"{spine.name}->{leaf.name}", self.uplink_gbps,
                            queue_packets=self.cfg.port_queue_packets)
                down.connect(_Shim(leaf, leaf.name), self.cfg.link_latency_ns)
                spine.downlinks[leaf.name] = down

    def register(self, endpoint: Any, leaf: int = 0) -> Port:
        """Attach an endpoint to a given leaf; returns its uplink port."""
        if endpoint.name in self.endpoints:
            raise ValueError(f"duplicate endpoint name {endpoint.name!r}")
        self.endpoints[endpoint.name] = endpoint
        self.leaf_of[endpoint.name] = self.leaves[leaf].name
        return self.leaves[leaf].attach(endpoint)

    @property
    def switch(self) -> Switch:  # Network-compat shim for code that pokes .switch
        return self.leaves[0]
