"""Shared-resource primitives for the simulation kernel.

These mirror the classic SimPy resource set, trimmed to what the network
and NIC models need:

* :class:`Resource` — ``capacity`` identical servers with a FIFO queue
  (used for HPU pools, CPU cores, DMA engines);
* :class:`Store` — an unbounded or bounded FIFO of Python objects (used
  for egress queues, RPC command queues);
* :class:`Container` — a counted pool of indistinguishable units (used
  for NIC memory accounting and egress credits).

All wait operations return :class:`~repro.simnet.engine.Event` objects,
so processes simply ``yield`` them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "Store", "Container"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim, name=resource._req_name)
        self.resource = resource

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` identical servers with FIFO granting.

    Usage::

        req = res.request()
        yield req
        ...critical section...
        res.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._req_name = f"req({name})"  # shared by all Requests (hot path)
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()
        # occupancy bookkeeping for utilisation statistics
        self._busy_time = 0.0
        self._last_change = 0.0
        self._peak_queue = 0
        san = sim.sanitizer
        if san is not None:
            san.adopt("resource", self)

    # -- API -------------------------------------------------------------
    def request(self) -> Request:
        req = Request(self)
        san = self.sim.sanitizer
        if len(self.users) < self.capacity:
            self._account()
            self.users.append(req)
            if san is not None:
                san.claim("resource-slot", id(req), self.name)
            req.succeed(req)
        else:
            self.queue.append(req)
            req._abandon = lambda: self.cancel(req)
            self._peak_queue = max(self._peak_queue, len(self.queue))
            if san is not None:
                san.claim("resource-wait", id(req), self.name)
        return req

    def release(self, req: Request) -> None:
        if req not in self.users:
            raise SimulationError(f"release of request not holding {self.name!r}")
        self._account()
        self.users.remove(req)
        san = self.sim.sanitizer
        if san is not None:
            san.retire("resource-slot", id(req))
        if self.queue:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            if san is not None:
                san.retire("resource-wait", id(nxt))
                san.claim("resource-slot", id(nxt), self.name)
            nxt.succeed(nxt)

    def cancel(self, req: Request) -> None:
        """Withdraw a still-queued request (no-op if already granted)."""
        try:
            self.queue.remove(req)
        except ValueError:
            return
        san = self.sim.sanitizer
        if san is not None:
            san.retire("resource-wait", id(req))

    # -- stats -------------------------------------------------------------
    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += len(self.users) * (now - self._last_change)
        self._last_change = now

    def utilisation(self) -> float:
        """Mean busy servers per unit time since t=0, divided by capacity."""
        self._account()
        if self.sim.now <= 0:
            return 0.0
        return self._busy_time / (self.sim.now * self.capacity)

    @property
    def count(self) -> int:
        return len(self.users)

    @property
    def peak_queue(self) -> int:
        return self._peak_queue


class Store:
    """FIFO store of items with optional capacity bound.

    ``put`` blocks when the store is full; ``get`` blocks when empty.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "store",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        # event names formatted once, not per put/get (hot path)
        self._put_name = f"put({name})"
        self._get_name = f"get({name})"
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self._peak = 0
        san = sim.sanitizer
        if san is not None:
            san.adopt("store", self)

    def put(self, item: Any) -> Event:
        ev = Event(self.sim, name=self._put_name)
        san = self.sim.sanitizer
        if self._getters:
            getter = self._getters.popleft()
            if san is not None:
                san.retire("store-wait", id(getter))
            getter.succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            self._peak = max(self._peak, len(self.items))
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
            ev._abandon = lambda: self.cancel(ev)
            if san is not None:
                san.claim("store-wait", id(ev), self.name)
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters:
            getter = self._getters.popleft()
            san = self.sim.sanitizer
            if san is not None:
                san.retire("store-wait", id(getter))
            getter.succeed(item)
            return True
        if self.capacity is not None and len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        self._peak = max(self._peak, len(self.items))
        return True

    def get(self) -> Event:
        ev = Event(self.sim, name=self._get_name)
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            ev.succeed(item)
        else:
            self._getters.append(ev)
            ev._abandon = lambda: self.cancel(ev)
            san = self.sim.sanitizer
            if san is not None:
                san.claim("store-wait", id(ev), self.name)
        return ev

    def cancel(self, ev: Event) -> None:
        """Withdraw a still-queued getter or putter (no-op otherwise)."""
        try:
            self._getters.remove(ev)
        except ValueError:
            for pair in self._putters:
                if pair[0] is ev:
                    self._putters.remove(pair)
                    break
            else:
                return
        san = self.sim.sanitizer
        if san is not None:
            san.retire("store-wait", id(ev))

    def _admit_putter(self) -> None:
        if self._putters:
            pev, pitem = self._putters.popleft()
            self.items.append(pitem)
            self._peak = max(self._peak, len(self.items))
            san = self.sim.sanitizer
            if san is not None:
                san.retire("store-wait", id(pev))
            pev.succeed(None)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def peak(self) -> int:
        return self._peak


class Container:
    """A counted pool of units (credits, bytes of NIC memory, ...)."""

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        init: Optional[float] = None,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.level = capacity if init is None else init
        if not 0 <= self.level <= capacity:
            raise SimulationError("initial level out of range")
        self.name = name
        self._get_name = f"get({name})"  # formatted once (hot path)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._min_level = self.level
        san = sim.sanitizer
        if san is not None:
            san.adopt("container", self)

    def get(self, amount: float) -> Event:
        """Take ``amount`` units, blocking until available (FIFO order)."""
        if amount < 0:
            raise SimulationError("container get amount must be >= 0")
        if amount > self.capacity:
            raise SimulationError(
                f"get({amount}) exceeds container capacity {self.capacity}"
            )
        ev = Event(self.sim, name=self._get_name)
        san = self.sim.sanitizer
        if not self._getters and amount <= self.level:
            self.level -= amount
            self._min_level = min(self._min_level, self.level)
            if san is not None:
                san.container_grant(self, amount)
            ev.succeed(amount)
        else:
            self._getters.append((ev, amount))
            ev._abandon = lambda: self.cancel(ev)
            if san is not None:
                san.claim("container-wait", id(ev), self.name)
        return ev

    def cancel(self, ev: Event) -> None:
        """Withdraw a still-queued getter (no-op otherwise)."""
        for pair in self._getters:
            if pair[0] is ev:
                self._getters.remove(pair)
                san = self.sim.sanitizer
                if san is not None:
                    san.retire("container-wait", id(ev))
                return

    def try_get(self, amount: float) -> bool:
        """Non-blocking take, honouring FIFO waiters (fails if any queued)."""
        if self._getters or amount > self.level:
            return False
        self.level -= amount
        self._min_level = min(self._min_level, self.level)
        san = self.sim.sanitizer
        if san is not None:
            san.container_grant(self, amount)
        return True

    def put(self, amount: float) -> None:
        if amount < 0:
            raise SimulationError("container put amount must be >= 0")
        if self.level + amount > self.capacity + 1e-9:
            # Over-returning credits is always an accounting bug in the
            # caller; clamping here would silently mask it.
            raise SimulationError(
                f"container {self.name!r} over-returned: "
                f"level {self.level} + put({amount}) exceeds capacity {self.capacity}"
            )
        self.level += amount
        san = self.sim.sanitizer
        if san is not None:
            san.container_put(self, amount)
        while self._getters and self._getters[0][1] <= self.level:
            ev, amt = self._getters.popleft()
            self.level -= amt
            self._min_level = min(self._min_level, self.level)
            if san is not None:
                san.retire("container-wait", id(ev))
                san.container_grant(self, amt)
            ev.succeed(amt)

    @property
    def min_level(self) -> float:
        return self._min_level
