"""Discrete-event, packet-level network simulation substrate.

Replaces the paper's SST-based multi-node simulation (DESIGN.md §2).
"""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .link import Port, gbps_to_ns_per_byte
from .network import NetConfig, Network, Switch
from .packet import (
    TRANSPORT_HEADER_BYTES,
    Message,
    Packet,
    as_payload,
    fresh_msg_id,
    segment_message,
)
from .resources import Container, Request, Resource, Store
from .topology import LeafSpineNetwork
from .trace import Timeline, Tracer, summarize

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "LeafSpineNetwork",
    "Message",
    "NetConfig",
    "Network",
    "Packet",
    "Port",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Switch",
    "Timeline",
    "Timeout",
    "Tracer",
    "TRANSPORT_HEADER_BYTES",
    "as_payload",
    "fresh_msg_id",
    "gbps_to_ns_per_byte",
    "segment_message",
    "summarize",
]
