"""Lightweight tracing and statistics collection.

A :class:`Tracer` records typed events with timestamps.  Components emit
into it opportunistically; experiments query it afterwards.  Keeping the
trace as parallel flat lists (not per-event objects) keeps the hot path
allocation-light, per the HPC Python guide.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Tracer", "Timeline", "summarize", "percentile"]


@dataclass
class Timeline:
    """A named series of (t, value) samples."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[Any] = field(default_factory=list)

    def add(self, t: float, value: Any = None) -> None:
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, Any]]:
        return zip(self.times, self.values)


class Tracer:
    """Sink for named event streams; cheap when disabled."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.timelines: Dict[str, Timeline] = {}
        self.counters: Dict[str, int] = defaultdict(int)

    def emit(self, stream: str, t: float, value: Any = None) -> None:
        if not self.enabled:
            return
        tl = self.timelines.get(stream)
        if tl is None:
            tl = self.timelines[stream] = Timeline(stream)
        tl.add(t, value)

    def count(self, counter: str, n: int = 1) -> None:
        if self.enabled:
            self.counters[counter] += n

    def get(self, stream: str) -> Timeline:
        """Get-or-create the stream's timeline.

        The returned timeline is registered, so samples added through it
        are visible to later lookups (a fresh unregistered Timeline used
        to be returned for unknown streams, silently dropping writes).
        """
        tl = self.timelines.get(stream)
        if tl is None:
            tl = self.timelines[stream] = Timeline(stream)
        return tl

    def peek(self, stream: str) -> Timeline:
        """Read-only lookup: unknown streams yield an empty, *unregistered*
        timeline (the tracer is not mutated)."""
        return self.timelines.get(stream) or Timeline(stream)

    def values(self, stream: str) -> List[Any]:
        return list(self.peek(stream).values)


def percentile(sorted_samples: List[float], p: float) -> float:
    """Linear-interpolation percentile (numpy's default method) over an
    already-sorted sample list; ``p`` in [0, 1]."""
    n = len(sorted_samples)
    if n == 0:
        return 0.0
    if n == 1:
        return sorted_samples[0]
    rank = p * (n - 1)
    lo = int(rank)
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac


def summarize(samples: List[float]) -> Dict[str, Optional[float]]:
    """Distribution summary for a list of durations.

    Percentiles use linear interpolation between order statistics (the
    nearest-rank rule previously used here collapses every tail
    percentile onto the max for small n).  ``std`` is the population
    standard deviation.

    Statistics that would mislead are ``None`` rather than a number:
    every stat of an *empty* population (a 0.0 "latency" from zero
    samples reads as an excellent result), and the ``p999`` of fewer
    than 4 samples (it is just the max wearing a tail-percentile
    label).  Renderers print them as ``-``.
    """
    keys = ("min", "mean", "median", "p50", "p90", "p99", "p999", "max", "std")
    if not samples:
        out: Dict[str, Optional[float]] = {k: None for k in keys}
        out["n"] = 0
        return out
    s = sorted(samples)
    n = len(s)
    mean = sum(s) / n
    var = sum((x - mean) ** 2 for x in s) / n
    p50 = percentile(s, 0.5)
    return {
        "n": n,
        "min": s[0],
        "mean": mean,
        "median": p50,
        "p50": p50,
        "p90": percentile(s, 0.90),
        "p99": percentile(s, 0.99),
        "p999": percentile(s, 0.999) if n >= 4 else None,
        "max": s[-1],
        "std": var**0.5,
    }
