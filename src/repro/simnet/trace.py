"""Lightweight tracing and statistics collection.

A :class:`Tracer` records typed events with timestamps.  Components emit
into it opportunistically; experiments query it afterwards.  Keeping the
trace as parallel flat lists (not per-event objects) keeps the hot path
allocation-light, per the HPC Python guide.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Tracer", "Timeline", "summarize"]


@dataclass
class Timeline:
    """A named series of (t, value) samples."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[Any] = field(default_factory=list)

    def add(self, t: float, value: Any = None) -> None:
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, Any]]:
        return zip(self.times, self.values)


class Tracer:
    """Sink for named event streams; cheap when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.timelines: Dict[str, Timeline] = {}
        self.counters: Dict[str, int] = defaultdict(int)

    def emit(self, stream: str, t: float, value: Any = None) -> None:
        if not self.enabled:
            return
        tl = self.timelines.get(stream)
        if tl is None:
            tl = self.timelines[stream] = Timeline(stream)
        tl.add(t, value)

    def count(self, counter: str, n: int = 1) -> None:
        if self.enabled:
            self.counters[counter] += n

    def get(self, stream: str) -> Timeline:
        return self.timelines.get(stream, Timeline(stream))

    def values(self, stream: str) -> List[Any]:
        return list(self.get(stream).values)


def summarize(samples: List[float]) -> Dict[str, float]:
    """min/median/mean/p99/max summary for a list of durations."""
    if not samples:
        return {"n": 0, "min": 0.0, "mean": 0.0, "median": 0.0, "p99": 0.0, "max": 0.0}
    s = sorted(samples)
    n = len(s)

    def pct(p: float) -> float:
        idx = min(n - 1, int(round(p * (n - 1))))
        return s[idx]

    return {
        "n": n,
        "min": s[0],
        "mean": sum(s) / n,
        "median": pct(0.5),
        "p99": pct(0.99),
        "max": s[-1],
    }
