"""Deterministic discrete-event simulation kernel.

This is the substrate that replaces the paper's use of the Structural
Simulation Toolkit (SST).  It is a compact, generator-coroutine based
engine in the style of SimPy, specialised for the needs of packet-level
network simulation:

* time is measured in **nanoseconds** (floats);
* event ordering is fully deterministic: ties are broken by a
  monotonically increasing sequence number, so the same program produces
  the same trace on every run;
* processes are plain Python generators that ``yield`` *waitables*
  (:class:`Timeout`, :class:`Event`, other :class:`Process` objects, or
  :class:`AllOf`/:class:`AnyOf` combinators).

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(proc("a", 5.0))
>>> _ = sim.process(proc("b", 3.0))
>>> sim.run()
>>> log
[(3.0, 'b'), (5.0, 'a')]
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Generator, Iterable, Optional

from ..telemetry import Telemetry

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when it is interrupted.

    The ``cause`` attribute carries the interrupter-supplied reason.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is later either :meth:`succeed`-ed with
    a value or :meth:`fail`-ed with an exception.  Callbacks registered
    before triggering run when the event fires (in registration order).

    ``callbacks`` starts as ``None`` and is materialized on the first
    :meth:`add_callback` — most events in a packet simulation have
    exactly zero or one waiter, so the empty-list allocation per event
    is pure overhead on the hot path.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "triggered", "name", "_abandon")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False
        self.name = name
        #: optional resource-cleanup hook: set by Resource/Store/Container
        #: when this event is queued as a waiter, invoked by
        #: Process.interrupt() when the waiter is detached untriggered so
        #: the slot/credit is never granted to a dead process
        self._abandon: Optional[Callable[[], None]] = None

    # -- state ---------------------------------------------------------
    @property
    def value(self) -> Any:
        return self._value

    @property
    def ok(self) -> bool:
        return self.triggered and self._exc is None

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its callbacks *now*."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._value = value
        sim = self.sim
        sim._seq += 1
        heapq.heappush(sim._heap, (sim.now, sim._seq, self))
        return self

    def succeed_quiet(self, value: Any = None) -> "Event":
        """Succeed without a kernel dispatch when nothing is attached yet.

        With no callbacks registered there is nothing for the dispatch to
        run: the event is marked already-dispatched, so later waiters are
        rescheduled through ``_call_soon1`` exactly as they would be after
        a real dispatch.  With callbacks attached this degrades to
        :meth:`succeed`.  Fire-and-forget completions (DMA posts whose
        event is only inspected later) save one heap event each.
        """
        if self.callbacks:
            return self.succeed(value)
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._value = value
        self.callbacks = _DISPATCHED
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiters will see ``exc`` raised."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._exc = exc
        sim = self.sim
        sim._seq += 1
        heapq.heappush(sim._heap, (sim.now, sim._seq, self))
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        cbs = self.callbacks
        if cbs is _DISPATCHED:
            # Already fired: run on next kernel step to keep ordering sane.
            self.sim._call_soon1(fn, self)
        elif cbs is None:
            self.callbacks = [fn]
        else:
            cbs.append(fn)

    def _dispatched(self) -> bool:
        return self.triggered and self.callbacks is _DISPATCHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._exc is None else "failed"
        return f"<{type(self).__name__} {self.name!r} {state}>"


_DISPATCHED: list = []  # sentinel assigned to Event.callbacks after dispatch


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    The constructor is fully inlined (no ``super().__init__`` /
    ``_schedule_event`` calls, no per-instance name formatting): timeouts
    are the single most-allocated object in a packet simulation, and the
    old ``f"timeout({delay})"`` name alone cost more than the heap push.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._exc = None
        self.triggered = True  # a timeout cannot be cancelled or re-triggered
        self.name = "timeout"
        self._abandon = None
        self.delay = delay
        sim._seq += 1
        heapq.heappush(sim._heap, (sim.now + delay, sim._seq, self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay}>"


class Process(Event):
    """A running generator; completes when the generator returns.

    The generator's ``return`` value becomes the process's event value.
    Exceptions escaping the generator fail the process event; if nobody
    waits on the process, the exception is re-raised by
    :meth:`Simulator.run` (crashes are never silently swallowed).
    """

    __slots__ = ("gen", "_waiting_on", "_observed")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self._waiting_on: Optional[Event] = None
        self._observed = False
        sim._call_soon1(self._resume, None)

    # -- public --------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the next step."""
        if self.triggered:
            return
        target = self._waiting_on
        if target is not None and not target.triggered:
            # Detach from what we were waiting on; the stale callback
            # checks identity before resuming.
            self._waiting_on = None
            abandon = target._abandon
            if abandon is not None:
                # Withdraw the queued resource claim so it is never
                # granted to this (now dead) waiter.
                target._abandon = None
                abandon()
        self.sim._call_soon(lambda: self._throw(Interrupt(cause)))

    # -- kernel --------------------------------------------------------
    def _resume(self, trigger: Optional[Event]) -> None:
        if self.triggered:
            return
        if trigger is not None and trigger is not self._waiting_on:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        try:
            if trigger is not None and trigger._exc is not None:
                nxt = self.gen.throw(trigger._exc)
            else:
                value = trigger._value if trigger is not None else None
                nxt = self.gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            return
        self._wait_on(nxt)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            nxt = self.gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001
            self.fail(err)
            return
        self._wait_on(nxt)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
            )
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        # add_callback, inlined (one process resume per event on the hot path)
        cbs = target.callbacks
        if cbs is _DISPATCHED:
            self.sim._call_soon1(self._resume, target)
        elif cbs is None:
            target.callbacks = [self._resume]
        else:
            cbs.append(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf combinators."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str) -> None:
        super().__init__(sim, name=name)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            self._pending += 1
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is list of values.

    If any child fails, the condition fails with that child's exception.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="all_of")

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.exception is not None:
            self.fail(ev.exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is that event."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="any_of")

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.exception is not None:
            self.fail(ev.exception)
            return
        self.succeed(ev)


class Simulator:
    """The event loop.  Time unit: nanoseconds."""

    def __init__(self, sanitize: bool = False) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, object]] = []
        self._seq = 0
        self._running = False
        #: per-simulation observability sink (disabled by default; flip
        #: ``sim.telemetry.enabled`` to start recording spans/metrics)
        self.telemetry = Telemetry(enabled=False)
        #: runtime sanitizer (see repro.simsan); None = off, zero cost.
        #: When set, run()/run_window()/run_until_event() delegate to the
        #: sanitizer's instrumented loops and the resource primitives
        #: record acquisition backtraces.
        self.sanitizer = None
        if sanitize:
            from ..simsan import Sanitizer

            self.sanitizer = Sanitizer(self)
        #: fault oracle (see repro.faults.install_faults); None = no faults
        self.faults = None
        #: packet-train coalescing switch (see repro.simnet.link): ports
        #: may collapse an uncontended multi-packet burst into one train
        #: event with precomputed per-packet timestamps.  Purely a
        #: simulator fast path — timestamps are byte-identical either way.
        self.coalescing = True
        # -- self-profile (always on: integer bookkeeping only) --------
        self.events_dispatched = 0
        self._heap_high_water = 0
        self._wall_s = 0.0

    # -- construction helpers ------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"Simulator.process() needs a generator, got {type(gen).__name__}"
            )
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------
    # Heap entries are ``(time, seq, item)`` or ``(time, seq, fn, arg)``;
    # ``seq`` is unique, so the fourth element never participates in
    # tuple comparison.  The 4-tuple form lets hot callers schedule a
    # bound method with one argument without allocating a closure per
    # call (the old ``lambda: fn(arg)`` pattern).
    def _schedule_event(self, ev: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, ev))

    def _call_soon(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def _call_soon1(self, fn: Callable[[Any], None], arg: Any, delay: float = 0.0) -> None:
        """Schedule ``fn(arg)`` — the closure-free flavour of _call_soon."""
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, arg))

    def _call_at1(self, fn: Callable[[Any], None], arg: Any, t: float) -> None:
        """Schedule ``fn(arg)`` at ABSOLUTE simulated time ``t``.

        Used by the packet-train fast path, whose per-packet timestamps
        are precomputed arrays: pushing ``t`` itself keeps the fire time
        bit-identical to the per-packet slow path, whereas the delay form
        ``now + (t - now)`` can differ in the last ulp.
        """
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, fn, arg))

    def timeout_at(self, t: float, value: Any = None) -> Event:
        """An event that fires at ABSOLUTE simulated time ``t`` (>= now).

        The absolute-time analogue of :meth:`timeout`, with the same
        bit-exactness rationale as :meth:`_call_at1`.
        """
        if t < self.now:
            raise SimulationError(f"timeout_at({t}) is in the past (now={self.now})")
        ev = Event(self, "timeout_at")
        ev.triggered = True  # like Timeout: cannot be cancelled/re-triggered
        ev._value = value
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, ev))
        return ev

    # -- running ---------------------------------------------------------
    def _step(self) -> None:
        heap = self._heap
        if len(heap) > self._heap_high_water:
            self._heap_high_water = len(heap)
        entry = heapq.heappop(heap)
        t = entry[0]
        if t < self.now - 1e-9:
            raise SimulationError("time went backwards")
        self.now = t
        self.events_dispatched += 1
        item = entry[2]
        if isinstance(item, Event):
            self._dispatch(item)
        elif len(entry) == 3:
            item()
        else:
            item(entry[3])

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event heap drains or ``until`` (exclusive) is hit.

        Returns the final simulation time.  Unhandled process failures
        are re-raised here.  Note: background service processes (egress
        servers, sweepers) can keep the heap non-empty forever — use
        :meth:`run_until_event` to wait for a specific outcome.
        """
        if self.sanitizer is not None:
            return self.sanitizer.run(until)
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        wall0 = time.perf_counter()  # simlint: disable=SIM101 -- kernel self-profile
        # Stepping AND the dispatch body are inlined here (and in
        # run_until_event): one method call per event is measurable at
        # millions of events per run.  High-water and dispatch counters
        # run on locals and are written back on exit for the same
        # reason.  Keep in sync with _step()/_dispatch().
        heap = self._heap
        pop = heapq.heappop
        hw = self._heap_high_water
        ndisp = self.events_dispatched
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    break
                entry = pop(heap)
                n = len(heap)
                if n >= hw:
                    hw = n + 1
                t = entry[0]
                if t < self.now - 1e-9:
                    raise SimulationError("time went backwards")
                self.now = t
                ndisp += 1
                item = entry[2]
                if isinstance(item, Event):
                    callbacks = item.callbacks
                    item.callbacks = _DISPATCHED
                    if callbacks:
                        for cb in callbacks:
                            cb(item)
                    elif item._exc is not None:
                        if not isinstance(item, Process) or not item._observed:
                            raise item._exc
                elif len(entry) == 3:
                    item()
                else:
                    item(entry[3])
            else:
                if until is not None:
                    self.now = max(self.now, until)
        finally:
            self._heap_high_water = hw
            self.events_dispatched = ndisp
            self._running = False
            self._wall_s += time.perf_counter() - wall0  # simlint: disable=SIM101 -- kernel self-profile
        return self.now

    def run_window(self, horizon: float, inclusive: bool = False) -> float:
        """Process events with ``t < horizon`` (``t <= horizon`` when
        ``inclusive``), then stop WITHOUT advancing ``now`` to the bound.

        The conservative-window primitive of the partitioned engine
        (:mod:`repro.simnet.parallel`): between windows the coordinator
        injects cross-partition packets, so ``now`` must stay at the last
        *dispatched* event — jumping it to the horizon (as ``run(until)``
        does) would put later boundary injections in this partition's
        past.  Events at or beyond the bound stay queued untouched.
        """
        if self.sanitizer is not None:
            return self.sanitizer.run_window(horizon, inclusive)
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        wall0 = time.perf_counter()  # simlint: disable=SIM101 -- kernel self-profile
        # inlined stepping + dispatch — keep in sync with _step()/_dispatch()
        heap = self._heap
        pop = heapq.heappop
        hw = self._heap_high_water
        ndisp = self.events_dispatched
        try:
            while heap:
                t0 = heap[0][0]
                if t0 > horizon or (t0 == horizon and not inclusive):
                    break
                entry = pop(heap)
                n = len(heap)
                if n >= hw:
                    hw = n + 1
                t = entry[0]
                if t < self.now - 1e-9:
                    raise SimulationError("time went backwards")
                self.now = t
                ndisp += 1
                item = entry[2]
                if isinstance(item, Event):
                    callbacks = item.callbacks
                    item.callbacks = _DISPATCHED
                    if callbacks:
                        for cb in callbacks:
                            cb(item)
                    elif item._exc is not None:
                        if not isinstance(item, Process) or not item._observed:
                            raise item._exc
                elif len(entry) == 3:
                    item()
                else:
                    item(entry[3])
        finally:
            self._heap_high_water = hw
            self.events_dispatched = ndisp
            self._running = False
            self._wall_s += time.perf_counter() - wall0  # simlint: disable=SIM101 -- kernel self-profile
        return self.now

    def run_until_event(self, ev: Event, limit: Optional[float] = None) -> Any:
        """Run until ``ev`` fires; return its value (or raise its error).

        ``limit`` bounds simulated time; exceeding it raises
        :class:`SimulationError`, as does a drained heap (deadlock).
        """
        if self.sanitizer is not None:
            return self.sanitizer.run_until_event(ev, limit)
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        wall0 = time.perf_counter()  # simlint: disable=SIM101 -- kernel self-profile
        # inlined stepping + dispatch — keep in sync with _step()/_dispatch()
        heap = self._heap
        pop = heapq.heappop
        hw = self._heap_high_water
        ndisp = self.events_dispatched
        try:
            while not ev.triggered:
                if not heap:
                    raise SimulationError(
                        f"deadlock: event {ev.name!r} can never fire (heap empty)"
                    )
                if limit is not None and heap[0][0] > limit:
                    raise SimulationError(
                        f"event {ev.name!r} did not fire by t={limit} ns"
                    )
                entry = pop(heap)
                n = len(heap)
                if n >= hw:
                    hw = n + 1
                t = entry[0]
                if t < self.now - 1e-9:
                    raise SimulationError("time went backwards")
                self.now = t
                ndisp += 1
                item = entry[2]
                if isinstance(item, Event):
                    callbacks = item.callbacks
                    item.callbacks = _DISPATCHED
                    if callbacks:
                        for cb in callbacks:
                            cb(item)
                    elif item._exc is not None:
                        if not isinstance(item, Process) or not item._observed:
                            raise item._exc
                elif len(entry) == 3:
                    item()
                else:
                    item(entry[3])
        finally:
            self._heap_high_water = hw
            self.events_dispatched = ndisp
            self._running = False
            self._wall_s += time.perf_counter() - wall0  # simlint: disable=SIM101 -- kernel self-profile
        if ev.exception is not None:
            raise ev.exception
        return ev.value

    def run_until_complete(self, proc: Process, until: Optional[float] = None) -> Any:
        """Run until ``proc`` finishes; return its value or raise its error."""
        proc._observed = True
        return self.run_until_event(proc, limit=until)

    def _dispatch(self, ev: Event) -> None:
        callbacks = ev.callbacks
        ev.callbacks = _DISPATCHED
        if callbacks:
            for cb in callbacks:
                cb(ev)
        elif ev._exc is not None:
            # Nobody was waiting: crashes are never silently swallowed
            # (an unobserved failed Process re-raises here too).
            if not isinstance(ev, Process) or not ev._observed:
                raise ev._exc

    def peek(self) -> float:
        """Time of the next scheduled item, or +inf if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    # -- self-profile -----------------------------------------------------
    @property
    def heap_high_water(self) -> int:
        return max(self._heap_high_water, len(self._heap))

    @property
    def wall_seconds(self) -> float:
        """Wall-clock time spent inside run()/run_until_event()."""
        return self._wall_s

    def profile(self) -> dict:
        """Simulator self-profile: tracks the *simulator's* performance
        across PRs (events dispatched, heap high-water mark, wall-clock
        per simulated nanosecond)."""
        wall_ns = self._wall_s * 1e9
        return {
            "events_dispatched": self.events_dispatched,
            "heap_high_water": self.heap_high_water,
            "sim_ns": self.now,
            "wall_s": self._wall_s,
            "wall_ns_per_sim_ns": wall_ns / self.now if self.now > 0 else 0.0,
            "events_per_wall_s": (
                self.events_dispatched / self._wall_s if self._wall_s > 0 else 0.0
            ),
        }
