"""Top-level CLI: ``python -m repro``.

Subcommands:

* ``info``   — print the library version and the calibrated defaults;
* ``demo``   — run a 30-second end-to-end self-test (one write per
  protocol, with functional verification);
* ``bench``  — alias pointing at the experiment runner.
"""

from __future__ import annotations

import argparse
import sys


def _info() -> int:
    import repro
    from repro.params import SimParams

    p = SimParams()
    print(f"repro {repro.__version__} — SmartNIC-offloaded DFS building blocks (SC'22)")
    print()
    print("calibrated defaults (DESIGN.md §5):")
    print(f"  network    : {p.net.bandwidth_gbps:.0f} Gbit/s, MTU {p.net.mtu} B, "
          f"{p.net.link_latency_ns:.0f} ns links, {p.net.switch_latency_ns:.0f} ns switch")
    print(f"  PsPIN      : {p.pspin.n_clusters} clusters x {p.pspin.hpus_per_cluster} HPUs "
          f"@ {p.pspin.freq_ghz:.0f} GHz, "
          f"{p.pspin.l1_bytes_per_cluster >> 20} MiB L1/cluster + {p.pspin.l2_bytes >> 20} MiB L2")
    print(f"  descriptors: {p.pspin.request_descriptor_bytes} B/request, "
          f"~{(4 * p.pspin.l1_bytes_per_cluster + p.pspin.l2_bytes - p.pspin.dfs_wide_state_bytes) // p.pspin.request_descriptor_bytes} concurrent writes")
    print(f"  host       : PCIe {p.host.pcie_latency_ns:.0f} ns/way, "
          f"memcpy {p.host.memcpy_gbps / 8:.0f} GB/s, {p.host.cpu_cores} cores @ {p.host.cpu_freq_ghz:.0f} GHz")
    print()
    print("experiments: python -m repro.experiments list")
    return 0


def _demo() -> int:
    import numpy as np

    from repro import DfsClient, EcSpec, ReplicationSpec, build_testbed
    from repro.protocols import (
        install_cpu_replication_targets,
        install_rpc_targets,
        install_spin_targets,
    )

    print("running the protocol demo (one verified write per protocol)...\n")
    data = np.random.default_rng(0).integers(0, 256, 64 * 1024, dtype=np.uint8)
    rows = []

    def run(protocol, installer, **create_kw):
        tb = build_testbed(n_storage=8)
        if installer:
            installer(tb)
        c = DfsClient(tb)
        lay = c.create("/demo", size=data.nbytes, **create_kw)
        kw = {"chunk_bytes": 32 * 1024} if protocol == "cpu" else {}
        out = c.write_sync("/demo", data, protocol=protocol, **kw)
        assert out.ok, out.nacks
        tb.run(until=tb.sim.now + 200_000)
        got = c.read_back("/demo")
        assert np.array_equal(got[: data.nbytes], data)
        label = protocol
        if create_kw.get("replication"):
            label += f" k={create_kw['replication'].k}"
        if create_kw.get("ec"):
            label += f" RS({create_kw['ec'].k},{create_kw['ec'].m})"
        rows.append((label, out.latency_ns))

    run("raw", None)
    run("spin", install_spin_targets)
    run("rpc", install_rpc_targets)
    run("spin", install_spin_targets, replication=ReplicationSpec(k=3))
    run("rdma-flat", None, replication=ReplicationSpec(k=3))
    run("cpu", install_cpu_replication_targets, replication=ReplicationSpec(k=3))
    run("spin", install_spin_targets, ec=EcSpec(k=3, m=2))

    width = max(len(p) for p, _ in rows)
    for proto, lat in rows:
        print(f"  {proto:<{width}}  {lat:10.0f} ns")
    print("\nall writes verified byte-identical on the storage targets")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro")
    ap.add_argument("command", choices=["info", "demo", "bench"], nargs="?",
                    default="info")
    args, rest = ap.parse_known_args(argv)
    if args.command == "info":
        return _info()
    if args.command == "demo":
        return _demo()
    from repro.experiments.__main__ import main as exp_main

    return exp_main(rest or ["list"])


if __name__ == "__main__":
    raise SystemExit(main())
