"""Top-level CLI: ``python -m repro``.

Subcommands:

* ``info``   — print the library version and the calibrated defaults;
* ``demo``   — run a 30-second end-to-end self-test (one write per
  protocol, with functional verification);
* ``trace``  — run one traced write and export a Chrome/Perfetto
  ``.trace.json`` (open it at https://ui.perfetto.dev);
* ``perf``   — measure simulator throughput; snapshot or check the
  committed ``BENCH_simulator.json`` baseline;
* ``slo``    — run the fixed-seed SLO scenario suite: per-phase latency
  decomposition with budget checks; snapshot or check the committed
  ``BENCH_slo.json`` baseline (see docs/observability.md);
* ``lint``   — simulation-aware static analysis (determinism,
  coroutine-protocol, resource- and telemetry-hygiene rules; see
  ``docs/simlint.md``);
* ``parallel`` — run a fixed-seed scenario on the serial or partitioned
  engine and emit a deterministic CSV; CI diffs the two byte-for-byte
  (see ``docs/parallel_engine.md``);
* ``bench``  — alias pointing at the experiment runner.
"""

from __future__ import annotations

import argparse


def _info() -> int:
    import repro
    from repro.params import SimParams

    p = SimParams()
    print(f"repro {repro.__version__} — SmartNIC-offloaded DFS building blocks (SC'22)")
    print()
    print("calibrated defaults (DESIGN.md §5):")
    print(f"  network    : {p.net.bandwidth_gbps:.0f} Gbit/s, MTU {p.net.mtu} B, "
          f"{p.net.link_latency_ns:.0f} ns links, {p.net.switch_latency_ns:.0f} ns switch")
    print(f"  PsPIN      : {p.pspin.n_clusters} clusters x {p.pspin.hpus_per_cluster} HPUs "
          f"@ {p.pspin.freq_ghz:.0f} GHz, "
          f"{p.pspin.l1_bytes_per_cluster >> 20} MiB L1/cluster + {p.pspin.l2_bytes >> 20} MiB L2")
    print(f"  descriptors: {p.pspin.request_descriptor_bytes} B/request, "
          f"~{(4 * p.pspin.l1_bytes_per_cluster + p.pspin.l2_bytes - p.pspin.dfs_wide_state_bytes) // p.pspin.request_descriptor_bytes} concurrent writes")
    print(f"  host       : PCIe {p.host.pcie_latency_ns:.0f} ns/way, "
          f"memcpy {p.host.memcpy_gbps / 8:.0f} GB/s, {p.host.cpu_cores} cores @ {p.host.cpu_freq_ghz:.0f} GHz")
    print()
    print("experiments: python -m repro.experiments list")
    return 0


def _demo(argv=None) -> int:
    import numpy as np

    from repro import DfsClient, EcSpec, ReplicationSpec, build_testbed
    from repro.experiments.common import installer_for
    from repro.params import SimParams

    ap = argparse.ArgumentParser(prog="repro demo",
                                 description="End-to-end self-test: one verified "
                                             "write per protocol, optionally under "
                                             "seeded packet loss/corruption")
    ap.add_argument("--loss", type=float, default=0.0, metavar="P",
                    help="per-packet drop probability on every link")
    ap.add_argument("--corrupt", type=float, default=0.0, metavar="P",
                    help="per-packet corruption probability on every link")
    ap.add_argument("--seed", type=int, default=0,
                    help="fault-injection RNG seed (same seed = same drops)")
    args = ap.parse_args(argv)

    faulty = args.loss > 0 or args.corrupt > 0
    params = SimParams()
    if faulty:
        params = params.with_faults(
            loss_prob=args.loss, corrupt_prob=args.corrupt, seed=args.seed,
            retransmit=True,
        )
        print(f"running the protocol demo under faults "
              f"(loss={args.loss:g}, corrupt={args.corrupt:g}, seed={args.seed})...\n")
    else:
        print("running the protocol demo (one verified write per protocol)...\n")
    data = np.random.default_rng(0).integers(0, 256, 64 * 1024, dtype=np.uint8)
    rows = []
    fault_totals = {"drops": 0, "corrupted": 0, "retransmits": 0, "timeouts": 0}

    def run(protocol, **create_kw):
        tb = build_testbed(n_storage=8, params=params, telemetry=True)
        installer = installer_for(protocol)
        if installer:
            installer(tb)
        c = DfsClient(tb)
        c.create("/demo", size=data.nbytes, **create_kw)
        kw = {"chunk_bytes": 32 * 1024} if protocol == "cpu" else {}
        # transport-level retransmits are bounded; if an op gives up
        # (very lossy links), retry like a real application would
        for _ in range(3):
            out = c.write_sync("/demo", data, protocol=protocol, **kw)
            if out.ok:
                break
        assert out.ok, (protocol, out.nacks)

        def quiesced():
            if any(h.nic.pending_count() for h in [tb.clients[0], *tb.storage_nodes]):
                return False
            for node in tb.storage_nodes:
                acc = node.accelerator
                if acc is not None and (
                    acc.in_flight_messages or any(cl.hpus.users for cl in acc.clusters)
                ):
                    return False
            return True

        # drain trailing acks / parity traffic / retransmit watchdogs;
        # under loss a server-side chain can need several RTO backoffs
        tb.run(until=tb.sim.now + 200_000)
        deadline = tb.sim.now + 200_000_000
        while faulty and not quiesced() and tb.sim.now < deadline:
            tb.run(until=tb.sim.now + 1_000_000)
        got = c.read_back("/demo")
        assert np.array_equal(got[: data.nbytes], data), protocol
        # quiesce: no leaked ops, handler runs, or HPU slots anywhere
        for host in [tb.clients[0], *tb.storage_nodes]:
            assert host.nic.pending_count() == 0, (protocol, host.name)
        for node in tb.storage_nodes:
            if node.accelerator is not None:
                assert node.accelerator.in_flight_messages == 0, (protocol, node.name)
                for cl in node.accelerator.clusters:
                    assert not cl.hpus.users, (protocol, node.name)
        nics = [tb.clients[0].nic, *(n.nic for n in tb.storage_nodes)]
        fault_totals["retransmits"] += sum(n.retransmits for n in nics)
        fault_totals["timeouts"] += sum(n.timeouts for n in nics)
        if tb.faults is not None:
            fault_totals["drops"] += tb.faults.drops
            fault_totals["corrupted"] += tb.faults.corrupted
        label = protocol
        if create_kw.get("replication"):
            label += f" k={create_kw['replication'].k}"
        if create_kw.get("ec"):
            label += f" RS({create_kw['ec'].k},{create_kw['ec'].m})"
        from repro.telemetry import utilization_report

        p = tb.params.pspin
        util = utilization_report(
            tb.telemetry, tb.sim.now, n_hpus_per_node=p.n_clusters * p.hpus_per_cluster
        )
        rows.append((label, out.latency_ns, util))

    run("raw")
    run("spin")
    run("rpc")
    run("rpc+rdma")
    run("spin", replication=ReplicationSpec(k=3))
    run("rdma-flat", replication=ReplicationSpec(k=3))
    run("cpu", replication=ReplicationSpec(k=3))
    run("rdma-hyperloop", replication=ReplicationSpec(k=3))
    run("spin", ec=EcSpec(k=3, m=2))
    run("inec", ec=EcSpec(k=3, m=2))

    width = max(len(p) for p, _, _ in rows)
    print(f"  {'protocol':<{width}}  {'latency':>10}  {'HPU busy':>8}  {'link busy':>9}")
    for proto, lat, util in rows:
        print(f"  {proto:<{width}}  {lat:7.0f} ns  "
              f"{util['max_hpu_busy']:7.1%}  {util['max_link_busy']:8.1%}")
    print("\nall writes verified byte-identical on the storage targets")
    print("utilization: busiest node over each demo's whole run (telemetry registry)")
    if faulty:
        print(f"faults: {fault_totals['drops']} packets dropped, "
              f"{fault_totals['corrupted']} corrupted; clients recovered with "
              f"{fault_totals['retransmits']} retransmits "
              f"({fault_totals['timeouts']} ops gave up)")
        print("quiesce verified: no pending ops, in-flight messages, or HPU leaks")
    return 0


def _trace(argv) -> int:
    import numpy as np

    from repro.dfs.client import DfsClient
    from repro.dfs.layout import EcSpec, ReplicationSpec
    from repro.experiments.common import installer_for
    from repro.dfs.cluster import build_testbed
    from repro.telemetry import dump_metrics, write_chrome_trace

    ap = argparse.ArgumentParser(prog="repro trace",
                                 description="Run one traced write and export a "
                                             "Chrome/Perfetto trace (ui.perfetto.dev)")
    ap.add_argument("--protocol", default="spin",
                    choices=["spin", "raw", "rpc", "rpc+rdma", "cpu", "rdma-flat",
                             "rdma-hyperloop", "inec"])
    ap.add_argument("--replication", type=int, metavar="K", default=None,
                    help="replicate across K nodes")
    ap.add_argument("--ec", type=int, nargs=2, metavar=("K", "M"), default=None,
                    help="erasure-code as RS(K, M)")
    ap.add_argument("--size", type=int, default=64 * 1024, help="write size in bytes")
    ap.add_argument("--storage", type=int, default=8, help="number of storage nodes")
    ap.add_argument("--out", default=None, help="output path (default <protocol>.trace.json)")
    ap.add_argument("--metrics", default=None,
                    help="also dump the metrics registry (json or csv by extension)")
    args = ap.parse_args(argv)
    if args.replication and args.ec:
        ap.error("--replication and --ec are mutually exclusive")

    tb = build_testbed(n_storage=args.storage, telemetry=True)
    installer = installer_for(args.protocol)
    if installer is not None:
        installer(tb)
    client = DfsClient(tb)
    create_kw = {}
    if args.replication:
        create_kw["replication"] = ReplicationSpec(k=args.replication)
    if args.ec:
        create_kw["ec"] = EcSpec(k=args.ec[0], m=args.ec[1])
    client.create("/traced", size=max(args.size, 1) * 2, **create_kw)
    data = np.random.default_rng(7).integers(0, 256, args.size, dtype=np.uint8)
    out = client.write_sync("/traced", data, protocol=args.protocol)
    # let trailing DMAs / acks / parity traffic land in the trace
    tb.run(until=tb.sim.now + 200_000)

    tel = tb.telemetry
    path = args.out or f"{args.protocol.replace('+', '-')}.trace.json"
    write_chrome_trace(tel, path)
    if args.metrics:
        fmt = "csv" if args.metrics.endswith(".csv") else "json"
        dump_metrics(tel, args.metrics, fmt=fmt, now=tb.sim.now)

    spans = tel.finished_spans()
    cats = {}
    for s in spans:
        cats[s.cat] = cats.get(s.cat, 0) + 1
    prof = tb.sim.profile()
    print(f"{args.protocol} write of {args.size} B: "
          f"{'ok' if out.ok else 'DENIED'}, latency {out.latency_ns:.0f} ns")
    print(f"trace: {path}  (open at https://ui.perfetto.dev)")
    print("  spans: " + ", ".join(f"{k}={v}" for k, v in sorted(cats.items())))
    if args.metrics:
        print(f"  metrics: {args.metrics}")
    print(f"  simulator: {prof['events_dispatched']} events, "
          f"heap high-water {prof['heap_high_water']}, "
          f"{prof['wall_ns_per_sim_ns']:.1f} wall-ns/sim-ns")
    return 0 if out.ok else 1


def _parallel(argv) -> int:
    """Fixed-seed determinism probe for the partitioned engine: the CSV
    this emits must be byte-identical for every --partitions/--mode
    combination (CI runs 1 vs 4 and ``cmp``s the files)."""
    import numpy as np

    from repro import DfsClient, EcSpec, ReplicationSpec, build_testbed
    from repro.experiments.common import installer_for

    ap = argparse.ArgumentParser(
        prog="repro parallel",
        description="Run a fixed-seed multi-protocol scenario and emit a "
                    "deterministic CSV (engine-independent observables "
                    "only: outcomes, sim timestamps, merged counters).")
    ap.add_argument("--partitions", type=int, default=1, metavar="K",
                    help="conservative-window partitions (1 = serial kernel)")
    ap.add_argument("--mode", choices=["inline", "process"], default="inline",
                    help="partition execution mode (ignored for K=1)")
    ap.add_argument("--ops", type=int, default=4, metavar="N",
                    help="writes per protocol (default 4)")
    ap.add_argument("--out", default=None, metavar="PATH",
                    help="CSV path (default: stdout)")
    args = ap.parse_args(argv)

    scenarios = [
        ("spin", {}, {}),
        ("raw", {}, {}),
        ("rpc", {}, {}),
        ("rdma-flat", {"replication": ReplicationSpec(k=3)}, {}),
        ("inec", {"ec": EcSpec(k=3, m=2)}, {}),
    ]
    lines = ["kind,protocol,op,ok,t_end,latency_ns"]
    for proto, create_kw, write_kw in scenarios:
        tb = build_testbed(n_storage=8, n_clients=2, telemetry=True,
                           partitions=args.partitions,
                           parallel_mode=args.mode)
        installer = installer_for(proto)
        if installer is not None:
            installer(tb)
        c = DfsClient(tb)
        size = 96 * 1024 if proto == "inec" else 64 * 1024
        c.create("/f", size=size, **create_kw)
        data = np.random.default_rng(1).integers(0, 256, size, dtype=np.uint8)
        for i in range(args.ops):
            out = c.write_sync("/f", data, protocol=proto, **write_kw)
            lines.append(f"op,{proto},{i},{int(out.ok)},"
                         f"{tb.sim.now!r},{out.latency_ns!r}")
        # drain to a fixed horizon so trailing acks/sweeper ticks land
        # identically, then fold in every engine-independent counter
        tb.run(until=30_000_000.0)
        tb.finish()
        lines.append(f"now,{proto},,,{tb.sim.now!r},")
        for name, ctr in sorted(tb.telemetry.metrics.counters.items()):
            lines.append(f"counter,{proto},{name},,{ctr.value!r},")
    text = "\n".join(lines) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {len(lines)} rows to {args.out} "
              f"(partitions={args.partitions}, mode={args.mode})")
    else:
        print(text, end="")
    return 0


def _scenario(argv) -> int:
    """Run open-loop workload scenarios: one by name, a TOML file of
    specs, or the built-in matrix through the parallel sweep runner."""
    import csv as _csv
    import sys

    from repro.scenarios import (
        MATRIX_NAMES,
        SCENARIOS,
        get,
        load_toml,
        run_scenario,
        scenario_row_keys,
    )

    ap = argparse.ArgumentParser(
        prog="repro scenario",
        description="Open-loop workload scenarios (aggregated flow "
                    "generators): hot_shard, incast, the full matrix, or "
                    "your own TOML specs.")
    ap.add_argument("--name", metavar="NAME", default=None,
                    help="run one built-in scenario "
                         f"({', '.join(sorted(SCENARIOS))}); default: the "
                         f"matrix ({', '.join(MATRIX_NAMES)}) via the sweep "
                         "runner")
    ap.add_argument("--toml", metavar="PATH", default=None,
                    help="run every [[scenario]] spec in a TOML file")
    ap.add_argument("--quick", action="store_true",
                    help="~10x smaller populations and horizons")
    ap.add_argument("--seed", type=int, default=None, metavar="S",
                    help="override the seed for --name/--toml runs "
                         "(default: the sweep runner's per-point seed)")
    ap.add_argument("--engine", choices=["aggregated", "explicit"],
                    default="aggregated",
                    help="flow-generator engine (explicit is the per-client "
                         "reference; keep populations small)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="matrix mode: sweep points over N processes")
    ap.add_argument("--no-cache", action="store_true",
                    help="matrix mode: ignore the result cache")
    ap.add_argument("--out", default=None, metavar="PATH",
                    help="write rows as CSV")
    args = ap.parse_args(argv)

    from repro.experiments.scenario_matrix import ID, render
    from repro.runner import point_seed

    if args.toml or args.name:
        if args.toml:
            specs = load_toml(args.toml)
            if args.quick:
                from repro.scenarios import quick_variant

                specs = [quick_variant(s) for s in specs]
        else:
            try:
                specs = [get(args.name, quick=args.quick)]
            except KeyError as e:
                print(e.args[0], file=sys.stderr)
                return 2
        rows = []
        for spec in specs:
            seed = args.seed if args.seed is not None else point_seed(
                ID, {"scenario": spec.name, "quick": args.quick})
            rows.append(run_scenario(spec, seed=seed, engine=args.engine))
    else:
        from repro.experiments import scenario_matrix

        rows = scenario_matrix.run(quick=args.quick, jobs=args.jobs,
                                   cache=not args.no_cache)
        scenario_matrix.check(rows)

    print(render(rows))
    if args.out:
        with open(args.out, "w", newline="") as fh:
            w = _csv.DictWriter(fh, fieldnames=list(scenario_row_keys))
            w.writeheader()
            w.writerows(rows)
        print(f"[{len(rows)} rows written to {args.out}]")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro")
    ap.add_argument("command",
                    choices=["info", "demo", "trace", "perf", "slo", "lint",
                             "sanitize", "parallel", "scenario", "bench"],
                    nargs="?", default="info")
    args, rest = ap.parse_known_args(argv)
    if args.command == "info":
        return _info()
    if args.command == "demo":
        return _demo(rest)
    if args.command == "trace":
        return _trace(rest)
    if args.command == "parallel":
        return _parallel(rest)
    if args.command == "scenario":
        return _scenario(rest)
    if args.command == "perf":
        from repro.perfsnap import main as perf_main

        return perf_main(rest)
    if args.command == "slo":
        from repro.slo import main as slo_main

        return slo_main(rest)
    if args.command == "lint":
        from repro.simlint.cli import main as lint_main

        return lint_main(rest)
    if args.command == "sanitize":
        from repro.simsan.cli import main as sanitize_main

        return sanitize_main(rest)
    from repro.experiments.__main__ import main as exp_main

    return exp_main(rest or ["list"])


if __name__ == "__main__":
    raise SystemExit(main())
