"""Host memory target: the functional byte store behind a storage node.

The paper deliberately abstracts the storage medium (§III: "we assume
that the storage medium can digest data at network bandwidth or
higher"), targeting NVMM / in-memory file systems.  We model the target
as a flat byte-addressable buffer: writes land at explicit offsets, and
the benchmark assertions later check byte-for-byte contents (e.g. all
replicas identical after a replicated write).
"""

from __future__ import annotations

import numpy as np

__all__ = ["MemoryTarget", "AddressError"]


class AddressError(ValueError):
    """Out-of-range access to a memory target."""


class MemoryTarget:
    """A flat, byte-addressable storage target."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.buf = np.zeros(capacity, dtype=np.uint8)
        self.bytes_written = 0
        self.write_ops = 0

    def check_range(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.capacity:
            raise AddressError(
                f"range [{addr}, {addr + length}) outside target of {self.capacity} B"
            )

    def write(self, addr: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        self.check_range(addr, data.nbytes)
        self.buf[addr : addr + data.nbytes] = data
        self.bytes_written += data.nbytes
        self.write_ops += 1

    def read(self, addr: int, length: int) -> np.ndarray:
        self.check_range(addr, length)
        # A read returns a copy: callers may mutate it freely.
        return self.buf[addr : addr + length].copy()

    def view(self, addr: int, length: int) -> np.ndarray:
        """Zero-copy view for assertions in tests/benchmarks."""
        self.check_range(addr, length)
        return self.buf[addr : addr + length]
