"""Storage-node CPU model.

A pool of cores (a :class:`~repro.simnet.resources.Resource`) plus
helpers to charge cycle- or byte-denominated work.  The CPU is where the
RPC-based baselines (Fig. 1b) enforce DFS policies: request validation,
buffering copies, and replication forwarding all occupy a core here.
"""

from __future__ import annotations

from ..params import HostParams
from ..simnet.engine import Simulator
from ..simnet.link import gbps_to_ns_per_byte
from ..simnet.resources import Resource
from ..telemetry.metrics import HandleCache

__all__ = ["Cpu"]


class Cpu:
    """``cores`` identical cores at ``cpu_freq_ghz``."""

    def __init__(self, sim: Simulator, params: HostParams, name: str = "cpu"):
        self.sim = sim
        self.params = params
        self.name = name
        self._pid = f"host:{name.rsplit('.', 1)[0]}" if "." in name else "host"
        self.cores = Resource(sim, capacity=params.cpu_cores, name=f"{name}.cores")
        self._memcpy_ns_per_byte = gbps_to_ns_per_byte(params.memcpy_gbps)
        self.busy_ns = 0.0
        # handles resolved once per registry, not per run() (SIM401)
        self._handles = HandleCache(
            lambda m: (
                m.counter(f"cpu.{name}.busy_ns"),
                m.gauge(f"cpu.{name}.cores_busy"),
            )
        )

    def cycles_ns(self, cycles: float) -> float:
        return cycles / self.params.cpu_freq_ghz

    def memcpy_ns(self, nbytes: int) -> float:
        """Single-core buffered copy cost (what the RPC write path pays
        to stage data while validating, §IV-A)."""
        return nbytes * self._memcpy_ns_per_byte

    def run(self, duration_ns: float, trace=None):
        """Generator: occupy one core for ``duration_ns``.

        Usage: ``yield from cpu.run(t)`` inside a process.  ``trace``
        (a request trace context) attributes the execution to its
        request's latency anatomy.
        """
        req = self.cores.request()
        yield req
        t0 = self.sim.now
        try:
            yield self.sim.timeout(duration_ns)
            self.busy_ns += duration_ns
        finally:
            self.cores.release(req)
        tel = self.sim.telemetry
        if tel.enabled:
            tel.span(
                f"cpu {duration_ns:.0f}ns",
                pid=self._pid,
                tid="cpu",
                t0=t0,
                t1=self.sim.now,
                cat="host",
                trace=trace,
                phase="cpu",
            )
            busy, cores_busy = self._handles.get(tel.metrics)
            busy.inc(duration_ns)
            cores_busy.set(self.sim.now, self.cores.count)

    def run_cycles(self, cycles: float, trace=None):
        yield from self.run(self.cycles_ns(cycles), trace=trace)

    def utilisation(self) -> float:
        return self.cores.utilisation()
