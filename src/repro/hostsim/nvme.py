"""NVMe JBOF storage backend (§III).

The paper targets two storage media: NVMM (handlers DMA straight to
host memory — the default :class:`~repro.hostsim.memory.MemoryTarget`)
and NVMe just-a-bunch-of-flash, where "handlers would directly issue
NVMe writes via the system interconnect".  This module models the
latter: a bank of NVMe namespaces behind submission queues, each with a
fixed program latency and a bandwidth limit.  Writes are durable (and
visible to reads) only once the device completes them — so completion
handlers that wait for durability now wait for flash, not just PCIe.

The functional byte store is the same flat buffer, so every byte-level
assertion in the test-suite works identically against either backend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simnet.engine import Event, Simulator
from ..simnet.link import gbps_to_ns_per_byte
from ..simnet.resources import Resource, Store
from ..telemetry.metrics import HandleCache
from .memory import MemoryTarget

__all__ = ["NvmeParams", "NvmeTarget"]

from dataclasses import dataclass


@dataclass(frozen=True)
class NvmeParams:
    """A fast NVMe SSD (Gen4 enterprise class)."""

    #: flash program latency per write command
    write_latency_ns: float = 10_000.0
    #: sustained per-channel write bandwidth
    channel_gbps: float = 16.0
    #: parallel flash channels per device
    n_channels: int = 8
    #: submission-queue depth before new commands block
    queue_depth: int = 256


class NvmeTarget(MemoryTarget):
    """A byte-addressable view over an NVMe device model.

    ``write`` is *functional and immediate* (so callers that already
    waited for their own timing model keep working); ``submit_write``
    is the timed path: it returns an event firing when the command
    completes (data durable), charging queueing, channel bandwidth, and
    program latency.
    """

    def __init__(self, sim: Simulator, capacity: int, params: Optional[NvmeParams] = None,
                 name: str = "nvme"):
        super().__init__(capacity)
        self.sim = sim
        self.params = params or NvmeParams()
        self.name = name
        self._ns_per_byte = gbps_to_ns_per_byte(self.params.channel_gbps)
        self._channels = Resource(sim, self.params.n_channels, name=f"{name}.channels")
        self._sq: Store = Store(sim, capacity=self.params.queue_depth, name=f"{name}.sq")
        self.commands_completed = 0
        self.queue_full_rejections = 0
        # handles resolved once per registry, not per command (SIM401)
        self._handles = HandleCache(
            lambda m: (
                m.counter(f"nvme.{name}.bytes"),
                m.counter(f"nvme.{name}.commands"),
                m.gauge(f"nvme.{name}.sq_depth"),
            )
        )
        sim.process(self._dispatcher(), name=f"{name}.dispatch")

    # ------------------------------------------------------------- timed
    def submit_write(self, addr: int, data: np.ndarray) -> Event:
        """Queue a write command; event fires at durability."""
        data = np.asarray(data, dtype=np.uint8)
        self.check_range(addr, data.nbytes)
        done = self.sim.event(name=f"{self.name}.cmd")
        if not self._sq.try_put((addr, data, done)):
            self.queue_full_rejections += 1
            # a rejected command is an expected outcome, not a crash:
            # consume the failure so unobserved events don't take the
            # simulator down
            done.add_callback(lambda ev: None)
            done.fail(RuntimeError(f"{self.name}: submission queue full"))
        return done

    def _dispatcher(self):
        while True:
            addr, data, done = yield self._sq.get()
            self.sim.process(self._program(addr, data, done))

    def _program(self, addr: int, data: np.ndarray, done: Event):
        # The channel is busy only while the data streams to the die;
        # the flash *program* latency overlaps across planes, so it
        # delays completion without blocking the channel.
        req = self._channels.request()
        yield req
        t0 = self.sim.now
        try:
            yield self.sim.timeout(data.nbytes * self._ns_per_byte)
        finally:
            self._channels.release(req)
        yield self.sim.timeout(self.params.write_latency_ns)
        super().write(addr, data)
        self.commands_completed += 1
        tel = self.sim.telemetry
        if tel.enabled:
            pid = f"host:{self.name.rsplit('.', 1)[0]}" if "." in self.name else "host"
            tel.span(
                f"nvme program {data.nbytes}B",
                pid=pid,
                tid="nvme",
                t0=t0,
                t1=self.sim.now,
                cat="host",
                args={"bytes": int(data.nbytes), "addr": addr},
                phase="dma",
            )
            nbytes, ncmds, sq_depth = self._handles.get(tel.metrics)
            nbytes.inc(data.nbytes)
            ncmds.inc()
            sq_depth.set(self.sim.now, len(self._sq))
        done.succeed(None)

    def submission_queue_depth(self) -> int:
        return len(self._sq)
