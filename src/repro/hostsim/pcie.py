"""PCIe / system-interconnect model.

A shared DMA channel between the NIC and host memory: transfers are
serialized at the PCIe payload bandwidth and each transaction pays the
one-way latency before the data is visible in host memory.  The paper's
motivation hinges on this cost ("a PCIe round-trip can take up to
400 ns" [25], §III): CPU-centric policies pay it on every data touch,
sPIN handlers act on packets *before* they cross it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..params import HostParams
from ..simnet.engine import Event, Simulator
from ..simnet.link import gbps_to_ns_per_byte
from ..simnet.resources import Store

__all__ = ["Pcie"]


class Pcie:
    """A serializing DMA channel with per-transaction latency.

    ``dma(nbytes, on_complete)`` returns an event firing when the data is
    durable in host memory (serialization through the channel + one-way
    latency).  Transactions from concurrent packets queue FIFO, so a
    flood of incoming writes sees PCIe as a bandwidth resource, not just
    a constant.
    """

    def __init__(self, sim: Simulator, params: HostParams, name: str = "pcie"):
        self.sim = sim
        self.params = params
        self.name = name
        # telemetry track: group under the owning node ("sn0.pcie" ->
        # process "host:sn0", thread "pcie")
        self._pid = f"host:{name.rsplit('.', 1)[0]}" if "." in name else "host"
        self._ns_per_byte = gbps_to_ns_per_byte(params.pcie_bandwidth_gbps)
        self._queue: Store = Store(sim, name=f"{name}.q")
        self.bytes_transferred = 0
        self.transactions = 0
        self.busy_ns = 0.0
        sim.process(self._serve(), name=f"{name}.server")

    def dma(
        self,
        nbytes: int,
        on_complete: Optional[Callable[[], None]] = None,
        trace=None,
    ) -> Event:
        """Move ``nbytes`` across the interconnect; event fires when the
        transfer is durable (flushed) at the far side.  ``trace`` is an
        optional request trace context attached to the emitted span."""
        if nbytes < 0:
            raise ValueError("negative DMA size")
        done = self.sim.event(name=f"{self.name}.dma")
        self._queue.put((nbytes, on_complete, done, trace))
        return done

    def _serve(self):
        sim = self.sim
        tel = sim.telemetry
        lat = self.params.pcie_latency_ns
        while True:
            nbytes, on_complete, done, trace = yield self._queue.get()
            ser = nbytes * self._ns_per_byte
            t0 = sim.now
            if ser > 0:
                yield sim.timeout(ser)
            self.busy_ns += ser
            self.bytes_transferred += nbytes
            self.transactions += 1
            if tel.enabled:
                tel.span(
                    f"dma {nbytes}B",
                    pid=self._pid,
                    tid="pcie",
                    t0=t0,
                    t1=sim.now + lat,
                    cat="host",
                    trace=trace,
                    args={"bytes": nbytes},
                )
                m = tel.metrics
                m.counter(f"pcie.{self.name}.busy_ns").inc(ser)
                m.counter(f"pcie.{self.name}.bytes").inc(nbytes)
                m.gauge(f"pcie.{self.name}.queue_depth").set(sim.now, len(self._queue))

            def finish(cb=on_complete, ev=done):
                if cb is not None:
                    cb()
                ev.succeed(None)

            # Latency overlaps with the next transaction's serialization
            # (posted writes pipeline through the root complex).
            sim._call_soon(finish, delay=lat)

    def utilisation(self) -> float:
        return self.busy_ns / self.sim.now if self.sim.now > 0 else 0.0
