"""PCIe / system-interconnect model.

A shared DMA channel between the NIC and host memory: transfers are
serialized at the PCIe payload bandwidth and each transaction pays the
one-way latency before the data is visible in host memory.  The paper's
motivation hinges on this cost ("a PCIe round-trip can take up to
400 ns" [25], §III): CPU-centric policies pay it on every data touch,
sPIN handlers act on packets *before* they cross it.

Like :class:`~repro.simnet.link.Port`, the channel is a fused callback
chain rather than a Store+server process: one kernel event ends each
transaction's serialization and one delivers its completion, instead of
the get/timeout/finish triple per DMA of the old server loop.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..params import HostParams
from ..simnet.engine import Event, Simulator
from ..simnet.link import gbps_to_ns_per_byte
from ..telemetry.metrics import HandleCache

__all__ = ["Pcie"]


class Pcie:
    """A serializing DMA channel with per-transaction latency.

    ``dma(nbytes, on_complete)`` returns an event firing when the data is
    durable in host memory (serialization through the channel + one-way
    latency).  Transactions from concurrent packets queue FIFO, so a
    flood of incoming writes sees PCIe as a bandwidth resource, not just
    a constant.
    """

    def __init__(self, sim: Simulator, params: HostParams, name: str = "pcie"):
        self.sim = sim
        self.params = params
        self.name = name
        # telemetry track: group under the owning node ("sn0.pcie" ->
        # process "host:sn0", thread "pcie")
        self._pid = f"host:{name.rsplit('.', 1)[0]}" if "." in name else "host"
        self._ns_per_byte = gbps_to_ns_per_byte(params.pcie_bandwidth_gbps)
        self._dma_name = f"{name}.dma"
        self._q: Deque[Tuple[int, Optional[Callable[[], None]], Event, object]] = deque()
        #: end of the last scheduled serialization (closed-form path)
        self._free_t = 0.0
        self._busy = False
        self._cur: Optional[Tuple[int, Optional[Callable[[], None]], Event, object]] = None
        self.bytes_transferred = 0
        self.transactions = 0
        self.busy_ns = 0.0
        self._handles = HandleCache(
            lambda m: (
                m.counter(f"pcie.{name}.busy_ns"),
                m.counter(f"pcie.{name}.bytes"),
                m.gauge(f"pcie.{name}.queue_depth"),
            )
        )

    def dma(
        self,
        nbytes: int,
        on_complete: Optional[Callable[[], None]] = None,
        trace=None,
        post_t: Optional[float] = None,
    ) -> Event:
        """Move ``nbytes`` across the interconnect; event fires when the
        transfer is durable (flushed) at the far side.  ``trace`` is an
        optional request trace context attached to the emitted span.

        ``post_t`` lets a paced caller (the accelerator's train commit)
        post with the transaction's true issue time when it replays
        handler effects after the fact; it only takes effect on the
        closed-form path below and must never be in the channel's future.
        """
        if nbytes < 0:
            raise ValueError("negative DMA size")
        sim = self.sim
        done = Event(sim, name=self._dma_name)
        if not sim.telemetry.enabled:
            # Closed-form scheduling: with telemetry off the callback
            # chain's only externally visible effects are the completion
            # (cb + done) at end-of-serialization + latency and the
            # aggregate counters, so the whole FIFO schedule collapses to
            # arithmetic on ``_free_t`` — same floats as the chain
            # (start = prior end, end = start + ser, durable = end + lat).
            t = sim.now if post_t is None else post_t
            free = self._free_t
            start = free if free > t else t
            ser = nbytes * self._ns_per_byte
            end = start + ser
            self._free_t = end
            self.busy_ns += ser
            self.bytes_transferred += nbytes
            self.transactions += 1
            durable = end + self.params.pcie_latency_ns
            if durable <= sim.now:
                # Replayed post whose completion is already in the past
                # (train commit): apply it inline — nothing can have
                # observed the interval, or the train would have been
                # torn down and this post taken the live branch below.
                if on_complete is not None:
                    on_complete()
                done.succeed_quiet(None)
            else:
                sim._call_at1(self._fused_finish, (on_complete, done), durable)
            return done
        txn = (nbytes, on_complete, done, trace)
        if self._busy:
            self._q.append(txn)
        else:
            self._start(txn)
        return done

    @staticmethod
    def _fused_finish(pair) -> None:
        cb, done = pair
        if cb is not None:
            cb()
        done.succeed_quiet(None)

    # -- DMA fast path ----------------------------------------------------
    def _start(self, txn) -> None:
        self._busy = True
        self._cur = txn
        ser = txn[0] * self._ns_per_byte
        self.sim._call_soon1(self._ser_done, ser, delay=ser)

    def _ser_done(self, ser: float) -> None:
        sim = self.sim
        txn = self._cur
        assert txn is not None
        nbytes, on_complete, done, trace = txn
        lat = self.params.pcie_latency_ns
        self.busy_ns += ser
        self.bytes_transferred += nbytes
        self.transactions += 1
        tel = sim.telemetry
        if tel.enabled:
            tel.span(
                f"dma {nbytes}B",
                pid=self._pid,
                tid="pcie",
                t0=sim.now - ser,
                t1=sim.now + lat,
                cat="host",
                trace=trace,
                args={"bytes": nbytes},
                phase="dma",
            )
            busy, tbytes, gauge = self._handles.get(tel.metrics)
            busy.inc(ser)
            tbytes.inc(nbytes)
            gauge.set(sim.now, len(self._q))
        # Latency overlaps with the next transaction's serialization
        # (posted writes pipeline through the root complex).
        if self._q:
            self._start(self._q.popleft())
        else:
            self._busy = False
            self._cur = None
        sim._call_soon1(self._finish, (on_complete, done), delay=lat)

    @staticmethod
    def _finish(pair) -> None:
        cb, done = pair
        if cb is not None:
            cb()
        done.succeed(None)

    def utilisation(self) -> float:
        return self.busy_ns / self.sim.now if self.sim.now > 0 else 0.0
