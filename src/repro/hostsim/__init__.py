"""Host-side models: CPU cores, the PCIe interconnect, and the
byte-addressable storage target."""

from .cpu import Cpu
from .memory import AddressError, MemoryTarget
from .nvme import NvmeParams, NvmeTarget
from .pcie import Pcie

__all__ = ["AddressError", "Cpu", "MemoryTarget", "NvmeParams", "NvmeTarget", "Pcie"]
