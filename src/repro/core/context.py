"""sPIN execution contexts and the handler interface.

An *execution context* (§II-B1, §III-C) bundles: a packet-matching rule,
the handler set (header / payload / completion / cleanup), and a NIC
memory region with the DFS state shared by all handlers the context
spawns.  Contexts are installed into the NIC by the (user-level) DFS
software and are persistent: they match *classes of messages*, not
individual requests, so no per-request installation or connection setup
is needed (§III-B).

A handler has two parts:

* :meth:`Handler.cost` — the compute cost (instructions × CPI) the HPU
  charges before side effects; calibrated in :mod:`repro.pspin.isa`;
* :meth:`Handler.run` — a generator performing the handler's *effects*
  through the :class:`HandlerApi` (DMA writes to host, packet sends,
  acks).  Sends block on NIC egress, which is how stalls show up in the
  measured handler durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..pspin.isa import HandlerCost, cleanup_handler_cost
from ..simnet.packet import Packet
from .state import DfsState

if TYPE_CHECKING:  # pragma: no cover
    from ..pspin.accelerator import HandlerApi

__all__ = ["Task", "Handler", "HandlerSet", "ExecutionContext"]


@dataclass
class Task:
    """The ``spin_task_t`` of Listing 1: per-message execution handle."""

    ctx: "ExecutionContext"
    flow_id: int
    cluster: int

    @property
    def mem(self) -> DfsState:
        """``task->mem``: the context's NIC memory region."""
        return self.ctx.state


class Handler:
    """Base handler; subclasses implement cost() and run()."""

    name = "handler"

    def cost(self, task: Task, pkt: Packet) -> HandlerCost:
        raise NotImplementedError

    def run(self, api: "HandlerApi", task: Task, pkt: Packet):
        """Generator of simulation events (side effects).  Default: none."""
        return
        yield  # pragma: no cover


class CleanupHandler(Handler):
    """Default cleanup handler: free dangling state, notify the host
    (§VII, client-failure discussion)."""

    name = "cleanup"

    def cost(self, task: Task, pkt: Optional[Packet]) -> HandlerCost:
        return cleanup_handler_cost()

    def run(self, api: "HandlerApi", task: Task, pkt: Optional[Packet]):
        state = task.mem
        entry = state.get_request(task.flow_id)
        greq = entry.greq_id if entry else None
        state.free_request(task.flow_id, cleaned=True)
        state.post_host_event(
            {"type": "write_interrupted", "flow_id": task.flow_id, "greq_id": greq, "t": api.now}
        )
        return
        yield  # pragma: no cover


@dataclass
class HandlerSet:
    """The three sPIN handlers plus the cleanup extension (§VII)."""

    header: Handler
    payload: Handler
    completion: Handler
    cleanup: Optional[Handler] = None

    def __post_init__(self):
        if self.cleanup is None:
            self.cleanup = CleanupHandler()


class ExecutionContext:
    """A persistent, user-level packet-processing context.

    ``hpu_quota`` bounds how many HPUs this context's handlers may
    occupy simultaneously — the fairness/QoS knob the paper's cloud
    discussion calls for (§VII: "it is necessary to guarantee fairness
    and QoS" when NIC compute is shared between tenants).  ``None``
    means unrestricted (single-tenant deployments).
    """

    def __init__(
        self,
        name: str,
        handlers: HandlerSet,
        state: DfsState,
        match_ops: tuple[str, ...] = ("write",),
        hpu_quota: Optional[int] = None,
    ):
        self.name = name
        self.handlers = handlers
        self.state = state
        self.match_ops = match_ops
        if hpu_quota is not None and hpu_quota < 1:
            raise ValueError("hpu_quota must be >= 1 or None")
        self.hpu_quota = hpu_quota
        #: semaphore installed by the accelerator when a quota is set
        self._quota_sem = None

    def matches(self, pkt: Packet) -> bool:
        """Packet-to-context matching (like RDMA QP matching, §II-B1).

        Contexts match on operation class; packets of non-matching ops
        (acks, RPC traffic, reads) take the NIC's default path.
        """
        return pkt.op in self.match_ops
