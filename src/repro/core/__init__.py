"""The paper's primary contribution: sPIN execution contexts, the
Listing-1 handler skeleton, NIC-resident DFS state, request wire
formats, and the offloaded policies."""

from .context import ExecutionContext, Handler, HandlerSet, Task
from .handlers import DROP_COST, DfsPolicy, build_dfs_context
from .request import (
    DFS_HEADER_FIXED_BYTES,
    DfsHeader,
    EcParams,
    ReadRequestHeader,
    ReplicaCoord,
    ReplicationParams,
    WriteRequestHeader,
    request_header_bytes,
)
from .state import AccumulatorPool, DfsState, RequestEntry

__all__ = [
    "AccumulatorPool",
    "DFS_HEADER_FIXED_BYTES",
    "DROP_COST",
    "DfsHeader",
    "DfsPolicy",
    "DfsState",
    "EcParams",
    "ExecutionContext",
    "Handler",
    "HandlerSet",
    "ReadRequestHeader",
    "ReplicaCoord",
    "ReplicationParams",
    "RequestEntry",
    "Task",
    "WriteRequestHeader",
    "build_dfs_context",
    "request_header_bytes",
]
