"""Client request wire formats (§III-A, Fig. 3).

A **write request** carries: the RDMA/transport header (modelled as
:data:`~repro.simnet.packet.TRANSPORT_HEADER_BYTES` per packet), a
generic **DFS header** (request identity + capability), and a **write
request header (WRH)** with write-specific information — target address,
resiliency strategy and its parameters (replica coordinates for
replication; scheme, role, and parity-node coordinates for erasure
coding).  A **read request** carries the DFS header plus a **read
request header (RRH)**.

Only the *first* packet of a request carries the DFS-specific headers;
their byte size shrinks that packet's payload budget (see
:func:`~repro.simnet.packet.segment_message`).  The paper requires the
request headers to fit in a single MTU (§III-A); segmentation enforces
it.

In the simulator, header *objects* travel in ``Packet.headers`` under
the ``"dfs"``, ``"wrh"`` and ``"rrh"`` keys, while their ``wire_bytes``
are charged against the MTU so that timing is faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional, Sequence

from ..dfs.capability import CAPABILITY_WIRE_BYTES, Capability

__all__ = [
    "DfsHeader",
    "ReplicaCoord",
    "ReplicationParams",
    "EcParams",
    "WriteRequestHeader",
    "ReadRequestHeader",
    "DFS_HEADER_FIXED_BYTES",
]

#: greq_id(8) + op(1) + client_id(4) + flags(3) = 16 B before the capability.
DFS_HEADER_FIXED_BYTES = 16


@dataclass(frozen=True)
class DfsHeader:
    """Generic DFS header: request identity + authentication ticket.

    ``reply_to`` is the network address acknowledgments go to — always
    the originating client, even when the request was forwarded along a
    replication tree (each replica acks the client directly).
    """

    greq_id: int
    op: Literal["write", "read"]
    client_id: int
    capability: Optional[Capability]
    reply_to: str = ""

    @property
    def wire_bytes(self) -> int:
        cap = CAPABILITY_WIRE_BYTES if self.capability is not None else 0
        return DFS_HEADER_FIXED_BYTES + cap


@dataclass(frozen=True)
class ReplicaCoord:
    """Network address + storage address of one replica (§V-A)."""

    node: str
    addr: int

    #: node id (8) + storage address (8)
    WIRE_BYTES = 16


@dataclass(frozen=True)
class ReplicationParams:
    """Source-routed broadcast description carried in the WRH (§V-A)."""

    strategy: Literal["ring", "pbt"]
    virtual_rank: int
    coords: tuple[ReplicaCoord, ...]

    @property
    def wire_bytes(self) -> int:
        # strategy(1) + virtual_rank(2) + count(1) + coords
        return 4 + len(self.coords) * ReplicaCoord.WIRE_BYTES

    def children_of(self, rank: int) -> list[int]:
        """Ranks this node forwards to.  Rank 0 is the primary storage
        node; coords[i] is the node with virtual rank i+1.

        * ring: rank r sends to r+1 (a unary tree, §V-A);
        * pbt (pipelined binary tree): rank r sends to 2r+1 and 2r+2.
        """
        n = len(self.coords) + 1  # total nodes in the broadcast
        if self.strategy == "ring":
            nxt = rank + 1
            return [nxt] if nxt < n else []
        if self.strategy == "pbt":
            return [c for c in (2 * rank + 1, 2 * rank + 2) if c < n]
        raise ValueError(f"unknown replication strategy {self.strategy!r}")

    def coord_for_rank(self, rank: int) -> ReplicaCoord:
        """Coordinates of the node holding virtual rank ``rank`` (>=1)."""
        return self.coords[rank - 1]


@dataclass(frozen=True)
class EcParams:
    """Erasure-coding description carried in the WRH (§VI-B).

    ``role`` tells the receiving storage node whether it stores a data
    chunk (and must emit intermediate parities) or aggregates a parity
    chunk.  ``parity_coords`` are the parity-node coordinates; ``index``
    is this node's data-chunk index j (role=data) or parity index i
    (role=parity); ``block_id`` identifies the encoded block so the
    parity node can group the k incoming aggregation sequences (Fig. 14).
    """

    k: int
    m: int
    role: Literal["data", "parity"]
    index: int
    block_id: int
    parity_coords: tuple[ReplicaCoord, ...] = ()
    #: total chunk length in bytes (parity nodes size accumulators with it)
    chunk_bytes: int = 0

    @property
    def wire_bytes(self) -> int:
        # k(1) m(1) role(1) index(1) block_id(8) chunk_bytes(4) + coords
        return 16 + len(self.parity_coords) * ReplicaCoord.WIRE_BYTES


@dataclass(frozen=True)
class WriteRequestHeader:
    """WRH: target address + resiliency strategy option (§VI-B:
    replication and EC are mutually exclusive per write)."""

    addr: int
    resiliency: Literal["none", "replication", "ec"] = "none"
    replication: Optional[ReplicationParams] = None
    ec: Optional[EcParams] = None

    def __post_init__(self):
        if self.resiliency == "replication" and self.replication is None:
            raise ValueError("replication resiliency requires ReplicationParams")
        if self.resiliency == "ec" and self.ec is None:
            raise ValueError("ec resiliency requires EcParams")
        if self.replication is not None and self.ec is not None:
            raise ValueError("replication and EC are mutually exclusive (§VI-B)")

    @property
    def wire_bytes(self) -> int:
        # addr(8) + resiliency option(1) + pad(3)
        n = 12
        if self.replication is not None:
            n += self.replication.wire_bytes
        if self.ec is not None:
            n += self.ec.wire_bytes
        return n


@dataclass(frozen=True)
class ReadRequestHeader:
    """RRH: read-specific information."""

    addr: int
    length: int

    @property
    def wire_bytes(self) -> int:
        return 16  # addr(8) + length(8)


def request_header_bytes(
    dfs: DfsHeader,
    wrh: Optional[WriteRequestHeader] = None,
    rrh: Optional[ReadRequestHeader] = None,
) -> int:
    """Total DFS-specific header bytes on the first packet."""
    n = dfs.wire_bytes
    if wrh is not None:
        n += wrh.wire_bytes
    if rrh is not None:
        n += rrh.wire_bytes
    return n
