"""NIC-resident DFS state (the ``dfs_state_t`` of Listing 1).

Holds:

* the **request table** — one 77-byte descriptor per in-flight write,
  allocated in the handling cluster's L1 (spilling to L2) at
  header-handler time and freed by the completion (or cleanup) handler.
  Entries carry the fields only the header packet brings — the accept
  bit, replica coordinates (``coord_array``, §V-A), EC role — so payload
  handlers of later packets can act on them;
* the **accumulator pool** for EC parity aggregation (§VI-B3): the
  header handler of an intermediate-parity stream claims an accumulator
  sized like the packet payload; when the pool is empty, aggregation
  falls back to the host CPU;
* **DFS-wide state**: the GF(2^8) multiplication table and keys,
  installed at DFS-initialization time in the reserved NIC memory;
* the **host event queue**: handlers post policy events (auth failures,
  cleanup notices) that the DFS software on the CPU consumes (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..dfs.capability import CapabilityAuthority
from ..ec.gf256 import MUL_TABLE_BYTES
from ..params import PsPinParams
from ..pspin.memory import Allocation, NicMemory

__all__ = ["RequestEntry", "DfsState", "AccumulatorPool"]


@dataclass
class RequestEntry:
    """One in-flight request's NIC-side descriptor (77 B, §III-B2)."""

    greq_id: int
    accept: bool
    alloc: Allocation
    cluster: int
    #: policy scratch space (coord_array, EC role, DMA events, ...)
    scratch: dict[str, Any] = field(default_factory=dict)
    last_activity_ns: float = 0.0

    @property
    def tier(self) -> str:
        return self.alloc.tier


class AccumulatorPool:
    """Fixed-size pool of parity accumulators in NIC memory (§VI-B3)."""

    def __init__(self, nicmem: NicMemory, n_accumulators: int, acc_bytes: int):
        self.nicmem = nicmem
        self.acc_bytes = acc_bytes
        self.capacity = n_accumulators
        self._free: list[np.ndarray] = []
        self._backing: Optional[Allocation] = None
        if n_accumulators > 0:
            total = n_accumulators * acc_bytes
            self._backing = nicmem.alloc_wide(total)
            if self._backing is None:
                raise MemoryError(
                    f"accumulator pool ({total} B) does not fit in DFS-wide NIC memory"
                )
            self._free = [np.zeros(acc_bytes, dtype=np.uint8) for _ in range(n_accumulators)]
        #: aggregation-sequence id -> accumulator (the on-NIC hash table)
        self.table: dict[tuple, np.ndarray] = {}
        self.fallbacks = 0
        self.peak_in_use = 0

    def acquire(self, key: tuple) -> Optional[np.ndarray]:
        """Claim an accumulator for aggregation sequence ``key``.

        Returns None when the pool is exhausted — the caller must fall
        back to CPU aggregation (§VI-B3).
        """
        if key in self.table:
            return self.table[key]
        if not self._free:
            self.fallbacks += 1
            return None
        acc = self._free.pop()
        acc.fill(0)
        self.table[key] = acc
        self.peak_in_use = max(self.peak_in_use, self.capacity - len(self._free))
        return acc

    def lookup(self, key: tuple) -> Optional[np.ndarray]:
        return self.table.get(key)

    def release(self, key: tuple) -> None:
        acc = self.table.pop(key, None)
        if acc is not None:
            self._free.append(acc)

    @property
    def in_use(self) -> int:
        return self.capacity - len(self._free)


class DfsState:
    """All NIC-resident state of one storage node's DFS execution context."""

    def __init__(
        self,
        nicmem: NicMemory,
        params: PsPinParams,
        authority: Optional[CapabilityAuthority] = None,
        n_accumulators: int = 0,
        accumulator_bytes: int = 2048,
    ):
        self.nicmem = nicmem
        self.params = params
        #: service-shared key for capability verification; ``None`` means
        #: the context trusts clients (the sRDMA/Orion threat model, §IV)
        self.authority = authority
        #: the GF table and keys occupy DFS-wide NIC memory (§VI-B2)
        self._wide = nicmem.alloc_wide(MUL_TABLE_BYTES + 4096)
        if self._wide is None:
            raise MemoryError("DFS-wide state does not fit in NIC memory")
        self.req_table: dict[int, RequestEntry] = {}
        self.accumulators = AccumulatorPool(nicmem, n_accumulators, accumulator_bytes)
        self.host_events: list[dict] = []
        # counters
        self.requests_started = 0
        self.requests_completed = 0
        self.requests_denied_mem = 0
        self.requests_rejected_auth = 0
        self.requests_cleaned = 0
        self.peak_concurrent = 0

    # ---------------------------------------------------------- req table
    def alloc_request(
        self, flow_id: int, greq_id: int, cluster: int, accept: bool, now_ns: float
    ) -> Optional[RequestEntry]:
        existing = self.req_table.get(flow_id)
        if existing is not None and existing.greq_id == greq_id:
            # retransmitted header of a live request: reuse the entry
            # rather than leaking its descriptor allocation
            existing.last_activity_ns = now_ns
            return existing
        alloc = self.nicmem.alloc(cluster, self.params.request_descriptor_bytes)
        if alloc is None:
            self.requests_denied_mem += 1
            return None
        entry = RequestEntry(
            greq_id=greq_id,
            accept=accept,
            alloc=alloc,
            cluster=cluster,
            last_activity_ns=now_ns,
        )
        self.req_table[flow_id] = entry
        self.requests_started += 1
        self.peak_concurrent = max(self.peak_concurrent, len(self.req_table))
        return entry

    def get_request(self, flow_id: int) -> Optional[RequestEntry]:
        return self.req_table.get(flow_id)

    def free_request(self, flow_id: int, cleaned: bool = False) -> None:
        entry = self.req_table.pop(flow_id, None)
        if entry is None:
            return
        self.nicmem.free(entry.alloc)
        if cleaned:
            self.requests_cleaned += 1
        else:
            self.requests_completed += 1

    # ---------------------------------------------------------- host queue
    def post_host_event(self, event: dict) -> None:
        self.host_events.append(event)

    def drain_host_events(self) -> list[dict]:
        events, self.host_events = self.host_events, []
        return events
