"""Generic sPIN handlers for offloading DFS tasks (Listing 1).

The paper factors every offloaded policy into the same skeleton:

* the **header handler** calls ``DFS_request_init`` — validate the
  request (NACK on authentication failure), allocate a request-table
  entry, record the accept bit so later packets of a rejected request
  are dropped;
* the **payload handler** checks the accept bit and calls
  ``DFS_request_process_pkt`` — store the payload, forward to replicas,
  encode parities, ... ;
* the **completion handler** checks the accept bit and calls
  ``DFS_request_fini`` — wait for durability, send the client ack, free
  the request entry.

Policies supply the ``DFS_request_*`` bodies through :class:`DfsPolicy`;
the skeleton stays identical across authentication, replication, and
erasure coding — exactly the code-sharing story of Listing 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..dfs.capability import Rights
from ..pspin.isa import (
    HandlerCost,
    completion_handler_cost,
    header_handler_cost,
    payload_handler_cost,
)
from ..simnet.packet import Packet
from .context import ExecutionContext, Handler, HandlerSet, Task
from .state import DfsState, RequestEntry

if TYPE_CHECKING:  # pragma: no cover
    from ..pspin.accelerator import HandlerApi

__all__ = ["DfsPolicy", "build_dfs_context", "DROP_COST"]

#: Cost of a payload/completion handler that just checks the accept bit
#: and drops the packet (the ``else`` branches of Listing 1).
DROP_COST = HandlerCost(instructions=12, cpi=1.5)


class DfsPolicy:
    """The ``DFS_request_*`` plug-ins plus their cost annotations.

    The default implementation is the plain authenticated write: validate
    the capability, DMA payloads to the host target, ack after all DMAs
    flushed (§III-B1 persistence).
    """

    name = "auth-write"

    #: Straight-line contract for the payload path: True promises that
    #: ``process_pkt`` never yields (no egress sends, no waits — DMA
    #: posting via ``api.dma_write`` is fire-and-forget and allowed) and
    #: that ``payload_cost`` is not memory-intensive.  The packet-train
    #: fast path only paces payload handlers whose effective policy makes
    #: this promise; anything else de-coalesces to the per-packet path.
    #: Conservative default: subclasses must opt in explicitly.
    straightline = False

    # ------------------------------------------------------------- costs
    def header_cost(self, task: Task, pkt: Packet) -> HandlerCost:
        return header_handler_cost()

    def payload_cost(self, task: Task, entry: RequestEntry, pkt: Packet) -> HandlerCost:
        return payload_handler_cost()

    def completion_cost(self, task: Task, entry: RequestEntry, pkt: Packet) -> HandlerCost:
        return completion_handler_cost()

    # ------------------------------------------------- DFS_request_init
    def validate(self, state: DfsState, pkt: Packet, now_ns: float) -> bool:
        """Authenticate the request (§IV): verify the capability
        signature and that it grants the requested operation/range."""
        dfs = pkt.headers.get("dfs")
        if dfs is None:
            return False
        if state.authority is None:
            return True  # trusted-client threat model (Orion-style)
        if dfs.capability is None:
            return False
        wrh = pkt.headers.get("wrh")
        rrh = pkt.headers.get("rrh")
        if dfs.op == "write" and wrh is not None:
            addr, length = wrh.addr, pkt.headers.get("write_len", 0)
            rights = Rights.WRITE
        elif dfs.op == "read" and rrh is not None:
            addr, length = rrh.addr, rrh.length
            rights = Rights.READ
        else:
            return False
        return state.authority.verify(dfs.capability, rights, addr, length, now_ns)

    def on_header(self, api: "HandlerApi", task: Task, entry: RequestEntry, pkt: Packet) -> None:
        """Record header-only information into the request entry (e.g.
        the coord_array for replication).  Non-blocking."""
        wrh = pkt.headers.get("wrh")
        entry.scratch["addr"] = wrh.addr if wrh is not None else pkt.headers.get("addr", 0)
        entry.scratch["reply_to"] = pkt.headers["dfs"].reply_to or pkt.src

    # ------------------------------------------ DFS_request_process_pkt
    def process_pkt(self, api: "HandlerApi", task: Task, entry: RequestEntry, pkt: Packet):
        """Per-packet action; generator (may yield sends/waits)."""
        if pkt.payload is not None:
            api.dma_write(entry.scratch["addr"] + pkt.payload_offset, pkt.payload)
        return
        yield  # pragma: no cover

    # ------------------------------------------------- DFS_request_fini
    def request_fini(self, api: "HandlerApi", task: Task, entry: RequestEntry, pkt: Packet):
        """Finalize: wait until the data is durable, then ack the client
        — the explicit flush a CPU would do, now on the NIC (§III-B1)."""
        yield api.all_dma_flushed()
        yield api.send_control(
            entry.scratch["reply_to"],
            "ack",
            {
                "ack_for": entry.greq_id,
                "node": api._accel.node_name,
                # keyed by flow (message) id, not greq: one op may send
                # several messages to the same node (striping), each of
                # which earns its own ack; retransmits reuse the msg id
                "dedup": (api._accel.node_name, "dfs", task.flow_id),
            },
        )


# --------------------------------------------------------------- skeleton
class _HeaderHandler(Handler):
    name = "header"

    def __init__(self, policy: DfsPolicy):
        self.policy = policy

    def cost(self, task: Task, pkt: Packet) -> HandlerCost:
        return self.policy.header_cost(task, pkt)

    def run(self, api: "HandlerApi", task: Task, pkt: Packet):
        state = task.mem
        dfs = pkt.headers.get("dfs")
        greq = dfs.greq_id if dfs is not None else pkt.headers.get("greq_id", -1)
        accept = self.policy.validate(state, pkt, api.now)
        entry = state.alloc_request(task.flow_id, greq, task.cluster, accept, api.now)
        reply_to = (dfs.reply_to if dfs is not None else None) or pkt.src
        if entry is None:
            # NIC memory exhausted: deny, client retries later (§III-B2).
            api._accel.nacks_sent += 1
            yield api.send_control(reply_to, "nack", {"ack_for": greq, "reason": "nic_mem"})
            return
        if not accept:
            # DFS_request_init sends NACK if request auth fails.
            state.requests_rejected_auth += 1
            state.post_host_event({"type": "auth_reject", "greq_id": greq, "t": api.now})
            api._accel.nacks_sent += 1
            yield api.send_control(reply_to, "nack", {"ack_for": greq, "reason": "auth"})
            return
        self.policy.on_header(api, task, entry, pkt)


class _PayloadHandler(Handler):
    name = "payload"

    def __init__(self, policy: DfsPolicy):
        self.policy = policy

    def cost(self, task: Task, pkt: Packet) -> HandlerCost:
        entry = task.mem.get_request(task.flow_id)
        if entry is None or not entry.accept:
            return DROP_COST
        return self.policy.payload_cost(task, entry, pkt)

    def run(self, api: "HandlerApi", task: Task, pkt: Packet):
        entry = task.mem.get_request(task.flow_id)
        if entry is None or not entry.accept:
            return  # packet is dropped
        entry.last_activity_ns = api.now
        yield from self.policy.process_pkt(api, task, entry, pkt)


class _CompletionHandler(Handler):
    name = "completion"

    def __init__(self, policy: DfsPolicy):
        self.policy = policy

    def cost(self, task: Task, pkt: Packet) -> HandlerCost:
        entry = task.mem.get_request(task.flow_id)
        if entry is None or not entry.accept:
            return DROP_COST
        return self.policy.completion_cost(task, entry, pkt)

    def run(self, api: "HandlerApi", task: Task, pkt: Packet):
        state = task.mem
        entry = state.get_request(task.flow_id)
        if entry is not None and entry.accept:
            yield from self.policy.request_fini(api, task, entry, pkt)
        state.free_request(task.flow_id)


def build_dfs_context(
    name: str,
    policy: DfsPolicy,
    state: DfsState,
    match_ops: tuple[str, ...] = ("write",),
    cleanup: Optional[Handler] = None,
    hpu_quota: Optional[int] = None,
) -> ExecutionContext:
    """Assemble the Listing-1 handler set around a policy."""
    handlers = HandlerSet(
        header=_HeaderHandler(policy),
        payload=_PayloadHandler(policy),
        completion=_CompletionHandler(policy),
        cleanup=cleanup,
    )
    return ExecutionContext(
        name=name, handlers=handlers, state=state, match_ops=match_ops,
        hpu_quota=hpu_quota,
    )
