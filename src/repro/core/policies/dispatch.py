"""Per-request policy dispatch.

A single persistent execution context serves *all* client requests
(§III-B: handlers "are triggered for all incoming client requests");
which policy applies is decided per request by the *resiliency strategy
option* in the write request header (§VI-B).  This dispatcher reads that
option in the header handler and routes the request to the plain
authenticated write, the replication policy, or the EC data/parity
policies.
"""

from __future__ import annotations

from ...simnet.packet import Packet
from ..handlers import DfsPolicy
from ..state import RequestEntry
from .auth import AuthWritePolicy
from .erasure import EcDataPolicy, EcParityPolicy
from .read import ReadPolicy
from .replication import ReplicationPolicy

__all__ = ["DispatchPolicy"]


class DispatchPolicy(DfsPolicy):
    """Routes requests by operation and the WRH resiliency option."""

    name = "dfs"

    def __init__(self, mtu: int = 2048):
        self.auth = AuthWritePolicy()
        self.replication = ReplicationPolicy()
        self.ec_data = EcDataPolicy()
        self.ec_parity = EcParityPolicy()
        self.read = ReadPolicy(mtu=mtu)

    def _pick(self, pkt: Packet) -> DfsPolicy:
        dfs = pkt.headers.get("dfs")
        if dfs is not None and dfs.op == "read":
            return self.read
        wrh = pkt.headers.get("wrh")
        if wrh is None or wrh.resiliency == "none":
            return self.auth
        if wrh.resiliency == "replication":
            return self.replication
        if wrh.ec is not None and wrh.ec.role == "data":
            return self.ec_data
        return self.ec_parity

    # The header cost is the shared validation skeleton; after that the
    # chosen sub-policy drives costs and behaviour via the entry.
    def on_header(self, api, task, entry: RequestEntry, pkt: Packet) -> None:
        sub = self._pick(pkt)
        entry.scratch["policy"] = sub
        sub.on_header(api, task, entry, pkt)

    def payload_cost(self, task, entry: RequestEntry, pkt: Packet):
        return entry.scratch["policy"].payload_cost(task, entry, pkt)

    def completion_cost(self, task, entry: RequestEntry, pkt: Packet):
        return entry.scratch["policy"].completion_cost(task, entry, pkt)

    def process_pkt(self, api, task, entry: RequestEntry, pkt: Packet):
        yield from entry.scratch["policy"].process_pkt(api, task, entry, pkt)

    def request_fini(self, api, task, entry: RequestEntry, pkt: Packet):
        yield from entry.scratch["policy"].request_fini(api, task, entry, pkt)
