"""Protocol policy: authenticated reads (§III-A, Fig. 3).

A read request is a single packet carrying the DFS header (with the
capability) and the read request header (RRH: address + length).  The
header handler validates READ rights on the requested range exactly
like the write path; the payload handler then fetches the data from the
storage target across PCIe and streams ``read_resp`` packets back to
the client — a one-sided read with on-the-fly policy enforcement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...pspin.isa import HandlerCost, completion_handler_cost, header_handler_cost
from ...simnet.packet import Message, Packet, segment_message
from ..handlers import DfsPolicy
from ..state import RequestEntry

if TYPE_CHECKING:  # pragma: no cover
    from ...pspin.accelerator import HandlerApi
    from ..context import Task

__all__ = ["ReadPolicy"]


class ReadPolicy(DfsPolicy):
    """Serve validated reads from the NIC."""

    name = "read"

    def __init__(self, mtu: int = 2048):
        self.mtu = mtu

    def payload_cost(self, task, entry: RequestEntry, pkt: Packet) -> HandlerCost:
        # request parsing + DMA descriptor setup; response serialization
        # is charged by the egress port, the PCIe fetch by dma_timing.
        return HandlerCost(instructions=70, cpi=1.67)

    def completion_cost(self, task, entry, pkt) -> HandlerCost:
        return completion_handler_cost()

    def on_header(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet) -> None:
        dfs = pkt.headers["dfs"]
        rrh = pkt.headers["rrh"]
        entry.scratch["rrh"] = rrh
        entry.scratch["reply_to"] = dfs.reply_to or pkt.src
        entry.scratch["greq"] = dfs.greq_id

    def process_pkt(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet):
        rrh = entry.scratch["rrh"]
        # fetch the data from the storage target over PCIe
        yield api.dma_timing(rrh.length)
        data = api.host_read(rrh.addr, rrh.length)
        msg = Message(
            src=api._accel.node_name,
            dst=entry.scratch["reply_to"],
            op="read_resp",
            data=data,
            headers={"greq_id": entry.scratch["greq"]},
            header_bytes=16,
        )
        for resp in segment_message(msg, self.mtu):
            yield api.send(resp)

    def request_fini(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet):
        # the streamed data is the response; no separate ack
        return
        yield  # pragma: no cover
