"""Data-processing policy: streaming erasure coding, sPIN-TriEC (§VI).

The client splits a block into k chunks and writes chunk j to data node
j with packets *interleaved* across the k nodes (§VI-B1).  Roles come
from the write request header (§VI-B):

* **data node** (:class:`EcDataPolicy`): stores its chunk and, for every
  packet, multiplies the payload by the per-stream GF(2^8) coefficient
  (a row of the 256x256 on-NIC table, §VI-B2) and forwards one
  intermediate-parity packet per parity node — encoding happens *on the
  fly*, before data touches host memory;
* **parity node** (:class:`EcParityPolicy`): the header handler of each
  incoming intermediate stream joins a per-block aggregation; payload
  handlers claim a pooled accumulator per *aggregation sequence* (packet
  index i, Fig. 14) and XOR the contribution in with (modelled) atomic
  memory ops.  When all k contributions for sequence i arrived, the
  final parity bytes are DMA'd to the storage target and the accumulator
  returns to the pool.  If the pool is empty, that sequence falls back
  to CPU aggregation (§VI-B3).

The parity node acks the client once all k streams completed and every
final-parity DMA flushed; together with the k data-node acks the client
observes k+m acks per encoded block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

import numpy as np

from ...ec.gf256 import gf_mul_scalar_vec
from ...ec.reed_solomon import RSCode
from ...pspin.isa import (
    HandlerCost,
    ec_completion_cost,
    ec_data_payload_cost,
    ec_parity_payload_cost,
)
from ...simnet.packet import Packet, derived_msg_id
from ..handlers import DfsPolicy
from ..request import EcParams, WriteRequestHeader
from ..state import DfsState, RequestEntry

if TYPE_CHECKING:  # pragma: no cover
    from ...pspin.accelerator import HandlerApi
    from ..context import Task

__all__ = ["EcDataPolicy", "EcParityPolicy", "rs_for"]

_rs_cache: Dict[tuple, RSCode] = {}


def rs_for(k: int, m: int) -> RSCode:
    """RS codec cache — the encoding matrix is DFS-wide state installed
    once at initialization time, not rebuilt per request."""
    key = (k, m)
    if key not in _rs_cache:
        _rs_cache[key] = RSCode(k, m)
    return _rs_cache[key]


class EcDataPolicy(DfsPolicy):
    """Role ``data``: store the chunk, emit intermediate parities."""

    name = "ec-data"

    def payload_cost(self, task, entry: RequestEntry, pkt: Packet) -> HandlerCost:
        ec: EcParams = entry.scratch["ec"]
        return ec_data_payload_cost(ec.m, pkt.payload_bytes)

    def completion_cost(self, task, entry, pkt) -> HandlerCost:
        return ec_completion_cost()

    def on_header(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet) -> None:
        super().on_header(api, task, entry, pkt)
        wrh: WriteRequestHeader = pkt.headers["wrh"]
        ec = wrh.ec
        assert ec is not None and ec.role == "data"
        rs = rs_for(ec.k, ec.m)
        streams = []
        for i, coord in enumerate(ec.parity_coords):
            streams.append(
                {
                    "coord": coord,
                    # stable per (parent msg, parity index) so retransmits
                    # re-forward the same stream ids (duplicate-suppressible)
                    "msg_id": derived_msg_id(pkt.msg_id, ("ec", i)),
                    "coef": rs.parity_coefficient(i, ec.index),
                    "wrh": WriteRequestHeader(
                        addr=coord.addr,
                        resiliency="ec",
                        ec=EcParams(
                            k=ec.k,
                            m=ec.m,
                            role="parity",
                            index=i,
                            block_id=ec.block_id,
                            chunk_bytes=ec.chunk_bytes,
                        ),
                    ),
                }
            )
        entry.scratch["ec"] = ec
        entry.scratch["streams"] = streams
        entry.scratch["dfs"] = pkt.headers["dfs"]
        entry.scratch["write_len"] = pkt.headers.get("write_len", 0)

    def process_pkt(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet):
        # Store the systematic data chunk locally.
        if pkt.payload is not None:
            api.dma_write(entry.scratch["addr"] + pkt.payload_offset, pkt.payload)
        # Encode and forward one intermediate parity per parity node.
        sends = []
        for stream in entry.scratch["streams"]:
            encoded = (
                gf_mul_scalar_vec(stream["coef"], pkt.payload)
                if pkt.payload is not None
                else None
            )
            fwd = pkt.child(
                src=api._accel.node_name,
                dst=stream["coord"].node,
                msg_id=stream["msg_id"],
                payload=encoded,
            )
            if pkt.is_header:
                fwd.headers = {
                    "dfs": entry.scratch["dfs"],
                    "wrh": stream["wrh"],
                    "write_len": entry.scratch["write_len"],
                }
                fwd.header_bytes = pkt.header_bytes
            else:
                fwd.headers = {}
                fwd.header_bytes = 0
            sends.append(api.send(fwd))
        for ev in sends:
            yield ev


class _BlockAgg:
    """Per (block, parity-index) aggregation state on a parity node."""

    __slots__ = ("k", "addr", "contrib", "fini_streams", "dma_events", "host_acc", "seen")

    def __init__(self, k: int, addr: int):
        self.k = k
        self.addr = addr
        self.contrib: Dict[int, int] = {}
        #: flow ids whose completion handler already ran (set, not a
        #: counter: a retransmitted completion must not double-count)
        self.fini_streams: set = set()
        self.dma_events: list = []
        #: host-side fallback accumulators (pool exhausted, §VI-B3)
        self.host_acc: Dict[int, np.ndarray] = {}
        #: (msg_id, seq) pairs already XOR'd in — a re-run stream (full
        #: end-to-end retransmit) must not contribute twice
        self.seen: set = set()


class EcParityPolicy(DfsPolicy):
    """Role ``parity``: aggregate k intermediate streams per block."""

    name = "ec-parity"

    def __init__(self):
        self.blocks: Dict[tuple, _BlockAgg] = {}
        self.cpu_fallback_packets = 0

    def payload_cost(self, task, entry: RequestEntry, pkt: Packet) -> HandlerCost:
        return ec_parity_payload_cost(pkt.payload_bytes)

    def completion_cost(self, task, entry, pkt) -> HandlerCost:
        return ec_completion_cost()

    def on_header(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet) -> None:
        super().on_header(api, task, entry, pkt)
        wrh: WriteRequestHeader = pkt.headers["wrh"]
        ec = wrh.ec
        assert ec is not None and ec.role == "parity"
        key = (ec.block_id, ec.index)
        blk = self.blocks.get(key)
        if blk is None:
            blk = self.blocks[key] = _BlockAgg(ec.k, wrh.addr)
        entry.scratch["blk_key"] = key
        entry.scratch["ec"] = ec

    # ------------------------------------------------------------ payload
    def process_pkt(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet):
        if pkt.payload is None:
            return
        state: DfsState = task.mem
        blk = self.blocks.get(entry.scratch["blk_key"])
        if blk is None:
            return  # block already completed (late duplicate packet)
        pk = (pkt.msg_id, pkt.seq)
        if pk in blk.seen:
            return  # re-run stream: contribution already aggregated
        blk.seen.add(pk)
        seq_key = entry.scratch["blk_key"] + (pkt.seq,)
        n = pkt.payload_bytes
        acc = state.accumulators.lookup(seq_key)
        if acc is None and pkt.seq not in blk.host_acc:
            acc = state.accumulators.acquire(seq_key)
        if acc is not None:
            # atomic XOR into the pooled on-NIC accumulator (§VI-B3)
            np.bitwise_xor(acc[:n], pkt.payload, out=acc[:n])
        else:
            # Pool exhausted: CPU-based aggregation fallback (§VI-B3).
            # The contribution crosses PCIe and a host core does the XOR.
            self.cpu_fallback_packets += 1
            host = blk.host_acc.get(pkt.seq)
            if host is None:
                host = blk.host_acc[pkt.seq] = np.zeros(n, dtype=np.uint8)
            np.bitwise_xor(host[:n], pkt.payload, out=host[:n])
            api.dma_timing(n)
            yield api.host_exec(n * 0.05)  # ~20 GB/s single-core XOR
        count = blk.contrib.get(pkt.seq, 0) + 1
        blk.contrib[pkt.seq] = count
        if count == blk.k:
            offset = pkt.payload_offset
            if acc is not None:
                blk.dma_events.append(api.dma_write(blk.addr + offset, acc[:n].copy()))
                state.accumulators.release(seq_key)
            else:
                # final parity already sits in host memory; place it
                api.host_write(blk.addr + offset, blk.host_acc.pop(pkt.seq))

    # --------------------------------------------------------- completion
    def request_fini(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet):
        key = entry.scratch["blk_key"]
        dedup = (api._accel.node_name, "ecp") + key
        blk = self.blocks.get(key)
        if blk is None:
            # block already aggregated + acked; the retransmit means the
            # client never saw the ack — re-ack, don't re-aggregate
            yield api.send_control(
                entry.scratch["reply_to"],
                "ack",
                {"ack_for": entry.greq_id, "node": api._accel.node_name, "dedup": dedup},
            )
            return
        blk.fini_streams.add(task.flow_id)
        if len(blk.fini_streams) < blk.k:
            return  # ack only when the whole block's parity is durable
        pending = [e for e in blk.dma_events if not e.triggered]
        if pending:
            yield api.sim.all_of(pending)
        self.blocks.pop(key, None)
        yield api.send_control(
            entry.scratch["reply_to"],
            "ack",
            {"ack_for": entry.greq_id, "node": api._accel.node_name, "dedup": dedup},
        )
