"""Extension: NIC-offloaded replicated log append (§VII, related work).

The paper argues (§VII "How to offload complex protocols?") that
consensus-style building blocks accelerated by extending RDMA — DARE's
replicated log [48], Tailwind's log replication [60] — map naturally
onto sPIN's RDMA+X model.  This policy implements the core primitive:

* clients issue ``log_append`` writes *without* choosing an offset;
* the primary's header handler performs an **atomic fetch-and-add** on
  the log tail held in NIC memory — the "X" plain RDMA cannot express —
  reserving a region and rejecting appends that would overflow;
* payload handlers place the record at the reserved offset and forward
  the packets along the replica ring *with the assigned offset*, so all
  replicas serialize appends identically without any CPU involvement;
* the completion handler acks the client with the assigned offset once
  the record is durable.

Concurrent appends from many clients therefore get disjoint,
totally-ordered log regions, replicated k ways, at NIC speed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ...pspin.isa import HandlerCost, completion_handler_cost, forward_payload_cost
from ...simnet.packet import Packet, derived_msg_id
from ..handlers import DfsPolicy
from ..state import DfsState, RequestEntry

if TYPE_CHECKING:  # pragma: no cover
    from ...pspin.accelerator import HandlerApi
    from ..context import Task

__all__ = ["LogAppendPolicy", "LogDescriptor"]


class LogDescriptor:
    """NIC-resident log metadata (tail pointer + bounds)."""

    __slots__ = ("log_id", "base_addr", "capacity", "tail", "appends", "rejected", "reserved")

    def __init__(self, log_id: int, base_addr: int, capacity: int):
        self.log_id = log_id
        self.base_addr = base_addr
        self.capacity = capacity
        self.tail = 0
        self.appends = 0
        self.rejected = 0
        #: greq -> assigned offset: a retransmitted append must land in
        #: its ORIGINAL slot, not consume fresh log space
        self.reserved: Dict[int, int] = {}

    def reserve(self, nbytes: int, greq: int | None = None) -> int | None:
        """Atomic fetch-and-add of the tail (the HH runs this without
        yielding, modelling the NIC's atomic).  Idempotent per ``greq``."""
        if greq is not None and greq in self.reserved:
            return self.reserved[greq]
        if self.tail + nbytes > self.capacity:
            self.rejected += 1
            return None
        off = self.tail
        self.tail += nbytes
        self.appends += 1
        if greq is not None:
            self.reserved[greq] = off
        return off


class LogAppendPolicy(DfsPolicy):
    """Offloaded ordered append with ring replication."""

    name = "log-append"

    def __init__(self):
        self.logs: Dict[int, LogDescriptor] = {}

    def register_log(self, log_id: int, base_addr: int, capacity: int) -> LogDescriptor:
        """Install a log's descriptor into NIC state (control plane)."""
        desc = LogDescriptor(log_id, base_addr, capacity)
        self.logs[log_id] = desc
        return desc

    # ------------------------------------------------------------- costs
    def header_cost(self, task, pkt) -> HandlerCost:
        # validation + the tail fetch-and-add
        return HandlerCost(instructions=135, cpi=1.758)

    def payload_cost(self, task, entry: RequestEntry, pkt: Packet) -> HandlerCost:
        return forward_payload_cost(1 if entry.scratch.get("next") else 0)

    def completion_cost(self, task, entry, pkt) -> HandlerCost:
        return completion_handler_cost()

    # ------------------------------------------------------------ header
    def validate(self, state: DfsState, pkt: Packet, now_ns: float) -> bool:
        desc = self.logs.get(pkt.headers.get("log_id"))
        if desc is None:
            return False
        if state.authority is None:
            return True
        from ...dfs.capability import Rights

        dfs = pkt.headers.get("dfs")
        if dfs is None or dfs.capability is None:
            return False
        return state.authority.verify(
            dfs.capability, Rights.WRITE, desc.base_addr, pkt.headers["write_len"], now_ns
        )

    def on_header(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet) -> None:
        desc = self.logs[pkt.headers["log_id"]]
        nbytes = pkt.headers["write_len"]
        assigned = pkt.headers.get("assigned_offset")
        if assigned is None:
            # primary: reserve atomically
            assigned = desc.reserve(nbytes, greq=entry.greq_id)
            if assigned is None:
                # log full: deny like any resource exhaustion (§III-B2)
                entry.accept = False
                entry.scratch["overflow"] = True
                reply = pkt.headers["dfs"].reply_to or pkt.src
                api._accel.nacks_sent += 1
                api.send_control(
                    reply, "nack", {"ack_for": entry.greq_id, "reason": "log_full"}
                )
                return
        else:
            # replica: mirror the primary's assignment so all copies
            # serialize identically (once per request, even retransmitted)
            if entry.greq_id not in desc.reserved:
                desc.tail = max(desc.tail, assigned + nbytes)
                desc.appends += 1
                desc.reserved[entry.greq_id] = assigned
        entry.scratch["offset"] = assigned
        entry.scratch["base"] = desc.base_addr
        entry.scratch["reply_to"] = pkt.headers["dfs"].reply_to or pkt.src
        entry.scratch["dfs"] = pkt.headers["dfs"]
        entry.scratch["hdr"] = dict(pkt.headers)
        ring = pkt.headers.get("ring", ())
        if ring:
            nxt, rest = ring[0], tuple(ring[1:])
            entry.scratch["next"] = nxt
            entry.scratch["rest"] = rest
            # stable id so a re-forwarded ring stream is dedup-able
            entry.scratch["fwd_msg"] = derived_msg_id(pkt.msg_id, ("log",))
        else:
            entry.scratch["next"] = None

    # ----------------------------------------------------------- payload
    def process_pkt(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet):
        if pkt.payload is not None:
            addr = entry.scratch["base"] + entry.scratch["offset"] + pkt.payload_offset
            api.dma_write(addr, pkt.payload)
        nxt = entry.scratch.get("next")
        if nxt is not None:
            fwd = pkt.child(
                src=api._accel.node_name,
                dst=nxt["node"],
                msg_id=entry.scratch["fwd_msg"],
            )
            if pkt.is_header:
                hdr = dict(entry.scratch["hdr"])
                hdr["assigned_offset"] = entry.scratch["offset"]
                hdr["ring"] = entry.scratch["rest"]
                fwd.headers = hdr
                fwd.header_bytes = pkt.header_bytes
            else:
                fwd.headers = {}
                fwd.header_bytes = 0
            yield api.send(fwd)

    # -------------------------------------------------------- completion
    def request_fini(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet):
        yield api.all_dma_flushed()
        yield api.send_control(
            entry.scratch["reply_to"],
            "ack",
            {
                "ack_for": entry.greq_id,
                "node": api._accel.node_name,
                "offset": entry.scratch["offset"],
                "dedup": (api._accel.node_name, "log", entry.greq_id),
            },
        )
