"""Data-movement policy: NIC-offloaded replication (§V).

The write request header carries the replication strategy (ring or
pipelined binary tree), the node's virtual rank, and the replica
coordinates (§V-A).  The header handler derives this node's children and
fills the ``coord_array`` in the request entry; every payload handler
then (1) stores the payload locally and (2) forwards a copy to each
child — so the broadcast is *naturally pipelined on network packets*.

The broadcast is **client-driven**: all routing information arrives in
the request itself, so storage nodes keep no CPU-initialized topology
state (§V-A) — the coord_array is initialised when the first packet of
the request arrives and freed with the request entry.

Every replica acks the originating client directly once its local copy
is durable; the client completes the write after collecting k acks.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from ...pspin.isa import HandlerCost, completion_handler_cost, forward_payload_cost
from ...simnet.packet import Packet, derived_msg_id
from ..handlers import DfsPolicy
from ..request import WriteRequestHeader
from ..state import RequestEntry

if TYPE_CHECKING:  # pragma: no cover
    from ...pspin.accelerator import HandlerApi
    from ..context import Task

__all__ = ["ReplicationPolicy"]


class ReplicationPolicy(DfsPolicy):
    """sPIN-Ring / sPIN-PBT replication forwarding."""

    name = "replication"

    # ------------------------------------------------------------- costs
    def payload_cost(self, task, entry: RequestEntry, pkt: Packet) -> HandlerCost:
        return forward_payload_cost(len(entry.scratch.get("coord_array", ())))

    def completion_cost(self, task, entry: RequestEntry, pkt: Packet) -> HandlerCost:
        return completion_handler_cost(len(entry.scratch.get("coord_array", ())))

    # ------------------------------------------------------------ header
    def on_header(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet) -> None:
        super().on_header(api, task, entry, pkt)
        wrh: WriteRequestHeader = pkt.headers["wrh"]
        rp = wrh.replication
        coord_array = []
        if rp is not None:
            for child_rank in rp.children_of(rp.virtual_rank):
                coord = rp.coord_for_rank(child_rank)
                coord_array.append(
                    {
                        "coord": coord,
                        # stable per (parent msg, child): a retransmitted
                        # parent re-forwards the SAME child stream, so
                        # downstream duplicate suppression works
                        "msg_id": derived_msg_id(pkt.msg_id, ("repl", child_rank)),
                        # the forwarded WRH: child's storage address and rank
                        "wrh": WriteRequestHeader(
                            addr=coord.addr,
                            resiliency="replication",
                            replication=replace(rp, virtual_rank=child_rank),
                        ),
                    }
                )
        entry.scratch["coord_array"] = coord_array
        entry.scratch["dfs"] = pkt.headers["dfs"]
        entry.scratch["write_len"] = pkt.headers.get("write_len", 0)

    # ----------------------------------------------------------- payload
    def process_pkt(self, api: "HandlerApi", task: "Task", entry: RequestEntry, pkt: Packet):
        # 1. local store (same as the plain write)
        if pkt.payload is not None:
            api.dma_write(entry.scratch["addr"] + pkt.payload_offset, pkt.payload)
        # 2. forward a copy to each child before the data even reaches
        #    host memory — the latency saving of Fig. 1d.
        sends = []
        for child in entry.scratch["coord_array"]:
            fwd = pkt.child(
                src=api._accel.node_name,
                dst=child["coord"].node,
                msg_id=child["msg_id"],
            )
            if pkt.is_header:
                fwd.headers = {
                    "dfs": entry.scratch["dfs"],
                    "wrh": child["wrh"],
                    "write_len": entry.scratch["write_len"],
                }
                fwd.header_bytes = pkt.header_bytes
            else:
                fwd.headers = {}
                fwd.header_bytes = 0
            sends.append(api.send(fwd))
        # The handler stays occupied until its sends clear the egress
        # port (this is where PBT's IPC collapse comes from).
        for ev in sends:
            yield ev
