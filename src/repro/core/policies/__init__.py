"""NIC-offloaded DFS policies: authentication, replication, erasure coding."""

from .auth import AuthWritePolicy
from .replication import ReplicationPolicy
from .erasure import EcDataPolicy, EcParityPolicy

__all__ = ["AuthWritePolicy", "ReplicationPolicy", "EcDataPolicy", "EcParityPolicy"]
