"""The three §IV threat models as interchangeable validation policies.

The paper distinguishes how much the DFS must verify per request
depending on whom it trusts:

* **trusted** — clients *and* network trusted (the sRDMA/Orion setting):
  the ticket is a plain-text secret; the handler does a constant-time
  compare.  Cheapest header handler.
* **capability** — clients untrusted, network trusted (the paper's
  default, what :class:`~repro.core.handlers.DfsPolicy` implements):
  verify the HMAC-signed capability descriptor and the operation/range.
* **packet-mac** — network untrusted: *every packet* carries a MAC that
  the payload handler must verify before acting, adding per-byte
  authentication work to the data path ("handlers need to authenticate
  each network packet in order to exclude tampering", §IV).

All three share the Listing-1 skeleton; they differ only in validation
cost and in where it runs (header-only vs per-packet).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import TYPE_CHECKING, Literal

from ...pspin.isa import HandlerCost
from ...simnet.packet import Packet
from ..handlers import DfsPolicy
from ..state import DfsState, RequestEntry

if TYPE_CHECKING:  # pragma: no cover
    from ...pspin.accelerator import HandlerApi

__all__ = ["ThreatModelPolicy", "sign_packet", "THREAT_MODELS"]

THREAT_MODELS = ("trusted", "capability", "packet-mac")

#: instructions per payload byte for the per-packet MAC (a software
#: hash round on the HPU; vendor crypto engines would lower this)
MAC_INSTR_PER_BYTE = 2
MAC_FIXED_INSTR = 220


def sign_packet(key: bytes, payload) -> bytes:
    """Per-packet MAC over the payload (client side, untrusted network)."""
    return hmac.new(key, bytes(payload) if payload is not None else b"", hashlib.sha256).digest()[:8]


class ThreatModelPolicy(DfsPolicy):
    """Plain write with a selectable §IV threat model."""

    def __init__(self, mode: Literal["trusted", "capability", "packet-mac"] = "capability",
                 shared_secret: bytes = b"plain-text-ticket"):
        if mode not in THREAT_MODELS:
            raise ValueError(f"unknown threat model {mode!r}")
        self.mode = mode
        self.shared_secret = shared_secret
        self.name = f"auth-{mode}"
        self.mac_failures = 0

    # ------------------------------------------------------------- costs
    def header_cost(self, task, pkt) -> HandlerCost:
        if self.mode == "trusted":
            # plain-text secret compare: a fraction of the 200-cycle check
            return HandlerCost(instructions=45, cpi=1.758)
        return super().header_cost(task, pkt)

    def payload_cost(self, task, entry: RequestEntry, pkt: Packet) -> HandlerCost:
        base = super().payload_cost(task, entry, pkt)
        if self.mode == "packet-mac":
            return HandlerCost(
                instructions=base.instructions + MAC_FIXED_INSTR
                + MAC_INSTR_PER_BYTE * pkt.payload_bytes,
                cpi=1.45,
                mem_intensive=True,
            )
        return base

    # --------------------------------------------------------- validation
    def validate(self, state: DfsState, pkt: Packet, now_ns: float) -> bool:
        if self.mode == "trusted":
            return pkt.headers.get("ticket") == self.shared_secret
        return super().validate(state, pkt, now_ns)

    # ------------------------------------------------------------ payload
    def process_pkt(self, api: "HandlerApi", task, entry: RequestEntry, pkt: Packet):
        if self.mode == "packet-mac" and pkt.payload is not None:
            expected = sign_packet(self.shared_secret, pkt.payload)
            if not hmac.compare_digest(expected, pkt.headers.get("mac", b"")):
                # Per-packet integrity failure: drop the packet, flag
                # the request so the completion handler NACKs it.
                self.mac_failures += 1
                entry.scratch["mac_failed"] = True
                task.mem.post_host_event(
                    {"type": "packet_mac_failure", "greq_id": entry.greq_id, "t": api.now}
                )
                return
        yield from super().process_pkt(api, task, entry, pkt)

    # -------------------------------------------------------- completion
    def request_fini(self, api: "HandlerApi", task, entry: RequestEntry, pkt: Packet):
        if entry.scratch.get("mac_failed"):
            api._accel.nacks_sent += 1
            yield api.send_control(
                entry.scratch["reply_to"],
                "nack",
                {"ack_for": entry.greq_id, "reason": "integrity"},
            )
            return
        yield from super().request_fini(api, task, entry, pkt)
