"""Protocol policy: client request authentication (§IV).

This is the *plain* offloaded write: the header handler validates the
capability carried in the write request header on the fly, so the client
issues a single RDMA write with no extra validation round trip (Fig. 5
right); payload handlers stream data to the storage target; the
completion handler acks after the data is durable.

The behaviour is exactly the :class:`~repro.core.handlers.DfsPolicy`
default — this subclass only pins the name used in handler statistics.
"""

from __future__ import annotations

from ..handlers import DfsPolicy

__all__ = ["AuthWritePolicy"]


class AuthWritePolicy(DfsPolicy):
    """Authenticated plain write (k=1, no resiliency)."""

    name = "auth-write"
    # process_pkt only posts DMA (no sends, no waits): pace-able.
    straightline = True
