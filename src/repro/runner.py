"""Parallel sweep runner with an on-disk result cache.

Every experiment sweep point builds a fresh, fully isolated testbed
(see ``experiments.common.measure_latency``), so points are
embarrassingly parallel: :func:`run_sweep` fans them out over a
``ProcessPoolExecutor`` while keeping the output row order — and the
row *contents* — identical to a serial run.

Determinism
-----------
Three ingredients make ``--jobs N`` byte-identical to ``--jobs 1``:

* :func:`repro.simnet.packet.reset_id_state` runs before every point
  (in the worker and in the serial path), so packet/message/greq ids
  never depend on what ran earlier in the interpreter;
* any randomness an experiment uses is seeded from the point itself
  (either an explicit ``seed`` entry or :func:`point_seed`), never from
  global state;
* results are collected by point index, not completion order.

Result cache
------------
Rows are cached on disk keyed by a content hash of (experiment id,
point, params, experiment module source).  Editing the experiment
module or changing ``SimParams`` invalidates automatically; delete the
cache directory (default ``.repro_cache/``, override with
``$REPRO_CACHE_DIR`` or ``--cache-dir``) to force a full re-run.

Worker pool
-----------
The worker pool is *persistent*: the first parallel sweep forks it, and
later :func:`run_sweep` calls reuse the warm workers (``atexit`` tears
it down).  Whether a sweep uses the pool at all is a measured
break-even decision: the runner keeps a per-experiment EMA of the
per-point compute cost and goes parallel only when the estimated serial
time exceeds the pool's spin-up + dispatch overhead — a sweep of
millisecond points runs serially instead of paying fork costs for a
sub-1x "speedup".  The verdict is recorded in
:attr:`SweepStats.pool_decision`.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "SweepStats",
    "LAST_STATS",
    "cache_dir",
    "point_key",
    "point_seed",
    "run_sweep",
    "shutdown_pool",
]

#: bump when the cache entry layout changes (invalidates old entries)
CACHE_SCHEMA = 1

#: default cache directory (relative to the CWD the sweep runs from)
DEFAULT_CACHE_DIR = ".repro_cache"


@dataclass
class SweepStats:
    """Wall-clock and cache accounting for the last :func:`run_sweep`."""

    experiment: str = ""
    n_points: int = 0
    n_cached: int = 0
    n_computed: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    cache_dir: Optional[str] = None
    errors: List[str] = field(default_factory=list)
    #: True when this sweep ran on already-forked (warm) pool workers
    pool_reused: bool = False
    #: how the pool-vs-serial break-even came out: ``pool:warm``,
    #: ``pool:cold``, ``serial:jobs=1``, ``serial:few-points``,
    #: ``serial:break-even``, or ``serial:custom-fn``
    pool_decision: str = "serial:jobs=1"
    #: the per-point cost estimate (EMA seconds) the decision used, if any
    est_point_s: Optional[float] = None

    def summary(self) -> str:
        src = f"{self.n_cached} cached + {self.n_computed} computed"
        par = f"jobs={self.jobs}" if self.jobs > 1 else "serial"
        return (
            f"{self.n_points} points ({src}), {par}, "
            f"{self.wall_s:.1f}s wall"
        )


#: stats of the most recent run_sweep() in this process (for CLI footers)
LAST_STATS = SweepStats()


def cache_dir(override: Optional[str] = None) -> str:
    """Resolve the cache directory: explicit arg > $REPRO_CACHE_DIR > default."""
    return override or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


def _module_source_hash(eid: str) -> str:
    """Hash of the experiment module's source, so code edits invalidate
    cached rows for that experiment automatically."""
    import inspect

    from .experiments import REGISTRY

    mod = REGISTRY[eid]
    try:
        src = inspect.getsource(mod)
    except (OSError, TypeError):
        return "nosource"
    return hashlib.sha256(src.encode()).hexdigest()[:16]


def point_key(eid: str, point: Dict[str, Any], params: Any, src_hash: str) -> str:
    """Content-addressed cache key for one sweep point."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "experiment": eid,
            "point": point,
            "params": repr(params),  # SimParams is a frozen dataclass
            "src": src_hash,
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def point_seed(eid: str, point: Dict[str, Any]) -> int:
    """A deterministic RNG seed derived from the point's content (stable
    across processes, runs, and PYTHONHASHSEED)."""
    payload = json.dumps({"experiment": eid, "point": point},
                         sort_keys=True, default=repr)
    return int.from_bytes(hashlib.sha256(payload.encode()).digest()[:4], "big")


# --------------------------------------------------------------- cache I/O
def _cache_path(cdir: str, key: str) -> str:
    return os.path.join(cdir, f"{key}.json")


def _cache_load(cdir: str, key: str) -> Optional[Dict[str, Any]]:
    try:
        with open(_cache_path(cdir, key)) as fh:
            entry = json.load(fh)
    except (OSError, ValueError):
        return None
    if entry.get("key") != key:
        return None
    return entry


def _cache_store(cdir: str, key: str, eid: str, point: Dict[str, Any], row: Any) -> None:
    os.makedirs(cdir, exist_ok=True)
    path = _cache_path(cdir, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            json.dump({"key": key, "experiment": eid, "point": point, "row": row}, fh)
        os.replace(tmp, path)  # atomic: concurrent workers never see partials
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


# --------------------------------------------------------- worker pool
#: cold-pool spin-up cost (fork + package import + IPC handshake); the
#: persistent pool pays this once per process instead of once per sweep
POOL_SPINUP_S = 0.25
#: per-point pickle/IPC overhead of the pool path
POOL_DISPATCH_S = 0.002
#: EMA weight of the newest per-point cost sample
_COST_ALPHA = 0.5

_POOL: Any = None
_POOL_WORKERS = 0
#: per-experiment EMA of per-point compute seconds (the break-even input)
_COST_EMA: Dict[str, float] = {}


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (atexit; tests)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def _acquire_pool(jobs: int):
    """Return a pool with >= ``jobs`` workers, reusing the warm one when
    it is big enough (growing replaces it)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS >= jobs:
        return _POOL, True
    shutdown_pool()
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor

    # fork keeps the already-imported repro package (and is the only
    # start method that works without a __main__ guard in arbitrary
    # callers); fall back to the platform default.
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        ctx = mp.get_context()
    _POOL = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)
    _POOL_WORKERS = jobs
    return _POOL, False


def _note_point_cost(eid: str, per_point_s: float) -> None:
    old = _COST_EMA.get(eid)
    _COST_EMA[eid] = (per_point_s if old is None
                      else _COST_ALPHA * per_point_s + (1 - _COST_ALPHA) * old)


# ------------------------------------------------------------- execution
def _exec_point(eid: str, point: Dict[str, Any], params: Any) -> Any:
    """Run one sweep point (this is the pool-worker entry point, so it
    must be a picklable module-level function).  The id-state reset makes
    the point's result independent of whatever this interpreter — a
    reused pool worker or the serial path — ran before."""
    from .experiments import REGISTRY
    from .simnet.packet import reset_id_state

    reset_id_state()
    return REGISTRY[eid].run_point(point, params)


def run_sweep(
    eid: str,
    points: Sequence[Dict[str, Any]],
    params: Any = None,
    jobs: int = 1,
    cache: bool = False,
    cache_dir_override: Optional[str] = None,
    run_point: Optional[Callable[[Dict[str, Any], Any], Any]] = None,
) -> List[Any]:
    """Run ``REGISTRY[eid].run_point(point, params)`` for every point.

    Results come back in ``points`` order regardless of ``jobs``.  With
    ``cache=True``, previously computed rows are returned from disk and
    only the misses are (re)simulated.  ``run_point`` overrides the
    registry lookup for ad-hoc sweeps (serial path only).
    """
    global LAST_STATS
    t0 = time.perf_counter()  # simlint: disable=SIM101 -- sweep wall-clock stats
    # More workers than cores only adds scheduler churn; clamp silently.
    jobs = min(max(1, jobs), os.cpu_count() or 1)
    stats = SweepStats(experiment=eid, n_points=len(points), jobs=jobs)
    cdir = cache_dir(cache_dir_override) if cache else None
    stats.cache_dir = cdir

    results: List[Any] = [None] * len(points)
    todo: List[int] = []

    if cache:
        src_hash = _module_source_hash(eid)
        keys = [point_key(eid, pt, params, src_hash) for pt in points]
        for i, key in enumerate(keys):
            entry = _cache_load(cdir, key)
            if entry is not None:
                results[i] = entry["row"]
                stats.n_cached += 1
            else:
                todo.append(i)
    else:
        keys = []
        todo = list(range(len(points)))

    if todo:
        n = len(todo)
        workers = min(jobs, n)
        est = _COST_EMA.get(eid)
        stats.est_point_s = est
        use_pool = jobs > 1 and n >= 2 and run_point is None
        if run_point is not None and jobs > 1:
            stats.pool_decision = "serial:custom-fn"
        if use_pool:
            warm = _POOL is not None and _POOL_WORKERS >= jobs
            if est is not None:
                # break-even: go parallel only when the estimated serial
                # time beats the pool path (spin-up amortized away once
                # the persistent pool is warm)
                serial_s = est * n
                pool_s = (est * n / workers
                          + (0.0 if warm else POOL_SPINUP_S)
                          + POOL_DISPATCH_S * n)
                if serial_s <= pool_s:
                    use_pool = False
                    stats.pool_decision = "serial:break-even"
            elif not warm and n < 2 * jobs:
                # no cost estimate yet: only pay a cold fork when every
                # worker gets at least two points
                use_pool = False
                stats.pool_decision = "serial:few-points"
        t_compute0 = time.perf_counter()  # simlint: disable=SIM101 -- sweep wall-clock stats
        if use_pool:
            ex, reused = _acquire_pool(jobs)
            stats.pool_reused = reused
            stats.pool_decision = "pool:warm" if reused else "pool:cold"
            futs = {
                i: ex.submit(_exec_point, eid, points[i], params)
                for i in todo
            }
            for i in todo:
                results[i] = futs[i].result()
        else:
            stats.jobs = 1
            fn = run_point
            for i in todo:
                if fn is not None:
                    from .simnet.packet import reset_id_state

                    reset_id_state()
                    results[i] = fn(points[i], params)
                else:
                    results[i] = _exec_point(eid, points[i], params)
        t_compute = time.perf_counter() - t_compute0  # simlint: disable=SIM101 -- sweep wall-clock stats
        # update the per-point cost EMA (pool runs approximate per-point
        # cost as wall * workers / n)
        _note_point_cost(eid, t_compute * (workers if use_pool else 1) / n)
        stats.n_computed = n
        if cache:
            for i in todo:
                _cache_store(cdir, keys[i], eid, points[i], results[i])

    stats.wall_s = time.perf_counter() - t0  # simlint: disable=SIM101 -- sweep wall-clock stats
    LAST_STATS = stats
    return results
