"""Central calibration parameters.

All timing constants live here, split by subsystem.  Values marked
*(paper)* come straight from the text (§III-D, Fig. 7, Tables I/II);
the rest are conventional hardware numbers (PCIe latency per Kalia et
al. [25] as cited by the paper; single-core memcpy bandwidth; RDMA NIC
pipeline costs) chosen so the baseline protocols land in realistic
ranges.  Experiments should construct :class:`SimParams` once and pass
it everywhere, so sweeps and ablations are pure parameter changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .faults import FaultParams
from .simnet.network import NetConfig

__all__ = ["HostParams", "PsPinParams", "SimParams", "KiB", "MiB"]

KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class HostParams:
    """Storage-node host: CPU, PCIe, memory."""

    #: One-way PCIe posted-write latency; the paper cites a PCIe round
    #: trip of "up to 400 ns" [25], so ~200 ns each way. (paper)
    pcie_latency_ns: float = 200.0
    #: PCIe Gen4 x16-ish payload bandwidth.
    pcie_bandwidth_gbps: float = 512.0
    #: Single-core buffered memcpy: ~20 GB/s (what the RPC path pays to
    #: buffer a write while validating it, §IV-A).
    memcpy_gbps: float = 160.0
    cpu_freq_ghz: float = 3.0
    cpu_cores: int = 8
    #: Polling RPC pickup + dispatch on the storage-node CPU.
    rpc_dispatch_ns: float = 250.0
    #: Request validation is the same 200-instruction capability check
    #: the NIC runs (Fig. 7), but on a 3 GHz core.
    rpc_validate_cycles: int = 200
    #: Completion/ack generation on the CPU path.
    cpu_completion_ns: float = 100.0


@dataclass(frozen=True)
class PsPinParams:
    """The PsPIN accelerator (ISCA'21 [23]); defaults are the paper's
    configuration (§II-B1, §III-B2, Fig. 7)."""

    n_clusters: int = 4                       # (paper)
    hpus_per_cluster: int = 8                 # (paper) 32 HPUs total
    freq_ghz: float = 1.0                     # (paper)
    l1_bytes_per_cluster: int = 1 * MiB       # (paper)
    l2_bytes: int = 4 * MiB                   # (paper)
    #: Fig. 7: 32 cycles to copy a 2 KiB packet into the packet buffer.
    pkt_buffer_bytes_per_cycle: int = 64      # (paper)
    #: Fig. 7: 1-2 cycle hardware scheduler; we charge 2.
    sched_cycles: int = 2                     # (paper)
    #: Fig. 7: 43 cycles to copy a 2 KiB packet into cluster L1.
    l1_copy_bytes_per_cycle: int = 48         # (paper: 2048/43 ≈ 47.6)
    #: Fig. 7: scheduling onto an idle HPU takes 1 ns.
    hpu_dispatch_ns: float = 1.0              # (paper)
    #: §III-B2: each write descriptor takes 77 bytes.
    request_descriptor_bytes: int = 77        # (paper)
    #: §III-B2: 2 MiB of the 8 MiB NIC memory hold DFS-wide state (e.g.
    #: the 64 KiB GF(2^8) table), leaving 6 MiB for request state.
    dfs_wide_state_bytes: int = 2 * MiB       # (paper)
    #: NIC egress credits available to handlers before sends block
    #: (per-cluster share of the egress queue).
    egress_credits: int = 8
    #: L1 contention: fractional CPI penalty per additional concurrently
    #: active HPU in the same cluster, applied to memory-intensive
    #: handlers (drives the ~12 % EC throughput drop, §VI-C(b)).
    l1_contention_per_hpu: float = 0.02
    #: Inactive-message timeout after which the cleanup handler fires
    #: (§VII, "What happens if a client fails?").
    cleanup_timeout_ns: float = 1_000_000.0
    #: Max packets queued into the accelerator before new *messages* are
    #: steered to the host instead (§III-C full-system consideration).
    ingress_queue_packets: int = 1024

    @property
    def n_hpus(self) -> int:
        return self.n_clusters * self.hpus_per_cluster

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


@dataclass(frozen=True)
class InecParams:
    """INEC-TriEC baseline model (Shi & Lu [37]): a firmware EC engine on
    a conventional RDMA NIC, operating per *chunk* out of host memory."""

    #: Fixed per-block engine invocation (descriptor fetch, doorbell,
    #: firmware dispatch).  Dominates small blocks — the memory-copy /
    #: setup overhead the paper says penalises INEC at 1 KiB (§VI-C(b)).
    block_overhead_ns: float = 2500.0
    #: Throughput of the vendor EC engine while streaming a chunk.
    engine_gbps: float = 200.0


@dataclass(frozen=True)
class SimParams:
    """Everything an experiment needs, bundled."""

    net: NetConfig = field(default_factory=NetConfig)
    host: HostParams = field(default_factory=HostParams)
    pspin: PsPinParams = field(default_factory=PsPinParams)
    inec: InecParams = field(default_factory=InecParams)
    #: RDMA NIC fixed pipeline latencies (rx parse / tx build).  These
    #: are *latency* stages, not throughput limits: NICs process packets
    #: at line rate through a fixed-depth pipeline.
    nic_rx_ns: float = 150.0
    nic_tx_ns: float = 150.0
    #: Client software overhead to post an operation (WQE build +
    #: doorbell over PCIe) and to reap its completion (CQ poll).
    client_post_ns: float = 500.0
    client_completion_ns: float = 150.0
    #: Storage-node memory target capacity (functional store).
    storage_capacity_bytes: int = 64 * MiB
    #: Fault injection + client reliability layer (defaults to none).
    faults: FaultParams = field(default_factory=FaultParams)
    #: Packet-train coalescing fast path (simulator optimisation, not a
    #: model change): multi-packet messages on uncontended links are
    #: simulated with one event per train instead of per packet, with
    #: byte-identical timestamps.  Disable to force the per-packet slow
    #: path (the differential tests compare the two).
    coalescing: bool = True

    def scaled_network(self, bandwidth_gbps: float) -> "SimParams":
        """Same testbed at a different line rate (the paper drops to
        100 Gbit/s for the INEC comparison, §VI-C(a))."""
        return replace(self, net=replace(self.net, bandwidth_gbps=bandwidth_gbps))

    def with_pspin(self, **kw) -> "SimParams":
        return replace(self, pspin=replace(self.pspin, **kw))

    def with_net(self, **kw) -> "SimParams":
        return replace(self, net=replace(self.net, **kw))

    def with_host(self, **kw) -> "SimParams":
        return replace(self, host=replace(self.host, **kw))

    def with_faults(self, **kw) -> "SimParams":
        return replace(self, faults=replace(self.faults, **kw))


def default_params(mtu: Optional[int] = None) -> SimParams:
    p = SimParams()
    if mtu is not None:
        p = p.with_net(mtu=mtu)
    return p
