"""Declarative scenario specs: topology × population × faults × protocol.

A :class:`ScenarioSpec` names everything one simulated experiment run
needs — cluster shape, open-loop workload (population, arrival process,
popularity, sizes), data-plane protocol/resiliency, placement pinning,
fault campaign and optional SLO budgets — as one frozen value that can
round-trip through plain dicts and TOML.  The matrix runner
(:mod:`repro.scenarios.matrix`) turns a spec into a row; the
``scenario_matrix`` experiment sweeps a list of them through
:mod:`repro.runner` with the usual caching/parallelism.

TOML format (``load_toml``): one ``[[scenario]]`` array-of-tables per
spec, with nested tables mirroring the dataclass tree::

    [[scenario]]
    name = "hot_shard_demo"
    protocol = "spin"
    pin_top = 64
    pin_node_index = 0
    [scenario.topology]
    n_storage = 8
    [scenario.workload]
    n_users = 50000
    [scenario.workload.arrival]
    kind = "poisson"
    rate_hz = 2.0
    [scenario.workload.popularity]
    n_objects = 4096
    alpha = 1.2
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..workloads.openloop import (
    ArrivalSpec,
    OpenLoopSpec,
    PopularitySpec,
    SizeSpec,
    WorkloadClass,
)

__all__ = [
    "TopologySpec",
    "FaultCampaign",
    "ScenarioSpec",
    "spec_from_dict",
    "spec_to_dict",
    "load_toml",
]


@dataclass(frozen=True)
class TopologySpec:
    """Cluster shape for one scenario."""

    n_storage: int = 8
    n_clients: int = 4          # client *hosts* (endpoints), not users
    storage_mib: int = 64      # per-node capacity
    placement: str = "roundrobin"

    def validate(self) -> None:
        if self.n_storage < 1 or self.n_clients < 1:
            raise ValueError("topology needs >= 1 storage and client node")


@dataclass(frozen=True)
class FaultCampaign:
    """Seeded faults active during the scenario (seed comes from the
    scenario seed, so campaigns are deterministic per point)."""

    loss: float = 0.0           # per-packet drop probability
    corrupt: float = 0.0        # per-packet corruption probability
    #: crash this storage node index at ``kill_at_ns`` into the run
    kill_node_index: Optional[int] = None
    kill_at_ns: float = 0.0

    @property
    def active(self) -> bool:
        return self.loss > 0.0 or self.corrupt > 0.0 \
            or self.kill_node_index is not None

    def validate(self) -> None:
        if not (0.0 <= self.loss < 1.0 and 0.0 <= self.corrupt < 1.0):
            raise ValueError("fault probabilities must be in [0, 1)")


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything one scenario run needs, declaratively."""

    name: str
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: OpenLoopSpec = field(default_factory=OpenLoopSpec)
    protocol: str = "spin"
    replication_k: int = 1      # 1 = no replication
    object_bytes: Optional[int] = None
    #: pin the ``pin_top`` hottest objects onto storage node
    #: ``pin_node_index`` (the hot-shard lever); 0 = no pinning
    pin_top: int = 0
    pin_node_index: int = 0
    faults: FaultCampaign = field(default_factory=FaultCampaign)
    telemetry: bool = False
    #: optional ``"<phase>.<stat>" -> ns`` budgets (needs telemetry)
    slo_budgets: Tuple[Tuple[str, float], ...] = ()

    def validate(self) -> None:
        self.topology.validate()
        self.workload.validate()
        self.faults.validate()
        if self.replication_k < 1:
            raise ValueError("replication_k must be >= 1")
        if self.pin_top < 0:
            raise ValueError("pin_top must be >= 0")
        if self.pin_top > 0 and not (
            0 <= self.pin_node_index < self.topology.n_storage
        ):
            raise ValueError("pin_node_index outside the topology")
        if self.faults.kill_node_index is not None and not (
            0 <= self.faults.kill_node_index < self.topology.n_storage
        ):
            raise ValueError("kill_node_index outside the topology")
        if self.slo_budgets and not self.telemetry:
            raise ValueError("slo_budgets need telemetry=True")


# --------------------------------------------------------- dict round-trip
def _prune(d: dict) -> dict:
    """Drop None values so dumps stay minimal and TOML-representable."""
    return {k: v for k, v in d.items() if v is not None}


def spec_to_dict(spec: ScenarioSpec) -> dict:
    """A plain nested-dict form of ``spec`` (JSON/TOML friendly)."""
    d = dataclasses.asdict(spec)
    d["topology"] = _prune(d["topology"])
    w = d["workload"]
    w["classes"] = [
        _prune(c) for c in w["classes"]
    ]
    if not w["classes"]:
        del w["classes"]
    d["workload"] = _prune(w)
    d["faults"] = _prune(d["faults"])
    d["slo_budgets"] = {k: v for k, v in spec.slo_budgets}
    if not d["slo_budgets"]:
        del d["slo_budgets"]
    return _prune(d)


def _arrival_from(d: Optional[dict]) -> Optional[ArrivalSpec]:
    return None if d is None else ArrivalSpec(**d)


def _size_from(d: Optional[dict]) -> Optional[SizeSpec]:
    return None if d is None else SizeSpec(**d)


def workload_from_dict(d: dict) -> OpenLoopSpec:
    d = dict(d)
    if "arrival" in d:
        d["arrival"] = _arrival_from(d["arrival"])
    if "popularity" in d:
        d["popularity"] = PopularitySpec(**d["popularity"])
    if "size" in d:
        d["size"] = _size_from(d["size"])
    if "classes" in d:
        d["classes"] = tuple(
            WorkloadClass(
                name=c["name"],
                fraction=c["fraction"],
                arrival=_arrival_from(c.get("arrival")),
                size=_size_from(c.get("size")),
            )
            for c in d["classes"]
        )
    return OpenLoopSpec(**d)


def spec_from_dict(d: dict) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from :func:`spec_to_dict` output
    (all fields optional except ``name``; validation runs)."""
    d = dict(d)
    if "topology" in d:
        d["topology"] = TopologySpec(**d["topology"])
    if "workload" in d:
        d["workload"] = workload_from_dict(d["workload"])
    if "faults" in d:
        d["faults"] = FaultCampaign(**d["faults"])
    if "slo_budgets" in d:
        budgets = d["slo_budgets"]
        if isinstance(budgets, dict):
            d["slo_budgets"] = tuple(sorted(budgets.items()))
        else:
            d["slo_budgets"] = tuple((k, v) for k, v in budgets)
    spec = ScenarioSpec(**d)
    spec.validate()
    return spec


def load_toml(path: str) -> List[ScenarioSpec]:
    """Load ``[[scenario]]`` tables from a TOML file."""
    import tomllib

    with open(path, "rb") as fh:
        doc = tomllib.load(fh)
    tables = doc.get("scenario")
    if not tables:
        raise ValueError(f"{path}: no [[scenario]] tables")
    return [spec_from_dict(t) for t in tables]


def scenario_index(specs: List[ScenarioSpec]) -> Dict[str, ScenarioSpec]:
    out: Dict[str, ScenarioSpec] = {}
    for s in specs:
        if s.name in out:
            raise ValueError(f"duplicate scenario name {s.name!r}")
        out[s.name] = s
    return out
