"""Built-in scenarios: the headline regimes of the workload matrix.

* ``hot_shard`` — Zipf(α=1.2) popularity with the 64 hottest objects
  pinned onto one storage node: the skew regime where one server takes
  the brunt of a million users' traffic (§VIII motivation — per-packet
  NIC handlers matter most when a single node melts).
* ``incast`` — synchronized fan-in: large client populations join
  periodic bursts aimed at a small cluster, the classic DFS incast
  pattern.
* ``uniform_onoff`` — self-similar background: superposed heavy-tailed
  on/off sources with uniform popularity over host-RPC, the contrast
  column for the skewed scenarios.
* ``hot_shard_lossy`` — the hot shard under seeded packet loss with the
  reliability layer on and per-phase SLO budgets enforced (telemetry).
* ``hot_shard_1m`` — the acceptance monster: 1,000,000 users over three
  simulated minutes; excluded from the default matrix (run it via
  ``python -m repro scenario --name hot_shard_1m`` or ``repro perf``).

``MATRIX_NAMES`` is the default sweep; ``QUICK_NAMES`` the 3-scenario
CI mini-matrix.  ``quick_variant`` shrinks any spec ~10x for smoke use.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..workloads.openloop import (
    ArrivalSpec,
    OpenLoopSpec,
    PopularitySpec,
    SizeSpec,
)
from .spec import FaultCampaign, ScenarioSpec, TopologySpec

__all__ = [
    "SCENARIOS",
    "MATRIX_NAMES",
    "QUICK_NAMES",
    "get",
    "quick_variant",
]

_KiB = 1024

_ZIPF_HOT = PopularitySpec(n_objects=4096, alpha=1.2)
_SIZES_LOGN = SizeSpec(
    dist="lognormal", median_bytes=4 * _KiB, sigma=0.7,
    min_bytes=1 * _KiB, max_bytes=16 * _KiB,
)

HOT_SHARD = ScenarioSpec(
    name="hot_shard",
    topology=TopologySpec(n_storage=8, n_clients=4),
    workload=OpenLoopSpec(
        n_users=50_000,
        arrival=ArrivalSpec(kind="poisson", rate_hz=2.0),
        popularity=_ZIPF_HOT,
        size=_SIZES_LOGN,
        warmup_ns=10e6,
        measure_ns=100e6,
    ),
    protocol="spin",
    pin_top=64,
    pin_node_index=0,
)

INCAST = ScenarioSpec(
    name="incast",
    topology=TopologySpec(n_storage=8, n_clients=4),
    workload=OpenLoopSpec(
        n_users=20_000,
        arrival=ArrivalSpec(
            kind="burst",
            burst_period_ns=1e6,
            burst_jitter_ns=50_000.0,
            burst_join=0.02,
        ),
        popularity=PopularitySpec(n_objects=1024, alpha=0.8),
        size=SizeSpec(dist="fixed", fixed_bytes=2 * _KiB),
        warmup_ns=2e6,
        measure_ns=20e6,
    ),
    protocol="spin",
)

UNIFORM_ONOFF = ScenarioSpec(
    name="uniform_onoff",
    topology=TopologySpec(n_storage=8, n_clients=4),
    workload=OpenLoopSpec(
        n_users=5_000,
        arrival=ArrivalSpec(
            kind="onoff",
            rate_hz=20.0,
            on_alpha=1.5, on_min_ns=2e6,
            off_alpha=1.5, off_min_ns=5e6,
        ),
        popularity=PopularitySpec(n_objects=2048, alpha=0.0),
        size=_SIZES_LOGN,
        warmup_ns=10e6,
        measure_ns=100e6,
    ),
    protocol="rpc",
)

HOT_SHARD_LOSSY = ScenarioSpec(
    name="hot_shard_lossy",
    topology=TopologySpec(n_storage=8, n_clients=4),
    workload=OpenLoopSpec(
        n_users=10_000,
        arrival=ArrivalSpec(kind="poisson", rate_hz=2.0),
        popularity=_ZIPF_HOT,
        size=_SIZES_LOGN,
        warmup_ns=5e6,
        measure_ns=30e6,
    ),
    protocol="spin",
    pin_top=64,
    pin_node_index=0,
    faults=FaultCampaign(loss=5e-4),
    telemetry=True,
    slo_budgets=(
        ("end_to_end.p99", 2_000_000.0),
        ("retransmit.p99", 1_500_000.0),
    ),
)

HOT_SHARD_1M = ScenarioSpec(
    name="hot_shard_1m",
    topology=TopologySpec(n_storage=8, n_clients=4),
    workload=OpenLoopSpec(
        n_users=1_000_000,
        # 1.25 mHz per user: each user writes about once every 13
        # simulated minutes, 1250 req/s aggregate — the "day of traffic
        # from a million users" point compressed to 3 minutes
        arrival=ArrivalSpec(kind="poisson", rate_hz=0.00125),
        popularity=_ZIPF_HOT,
        size=_SIZES_LOGN,
        warmup_ns=10e9,
        measure_ns=170e9,
    ),
    protocol="spin",
    pin_top=64,
    pin_node_index=0,
)

SCENARIOS: Dict[str, ScenarioSpec] = {
    s.name: s
    for s in (HOT_SHARD, INCAST, UNIFORM_ONOFF, HOT_SHARD_LOSSY, HOT_SHARD_1M)
}

#: the default matrix sweep (the 1M monster is opt-in)
MATRIX_NAMES = ("hot_shard", "incast", "uniform_onoff", "hot_shard_lossy")
#: the CI mini-matrix: 3 scenarios, covering all three arrival kinds
QUICK_NAMES = ("hot_shard", "incast", "uniform_onoff")


def quick_variant(spec: ScenarioSpec) -> ScenarioSpec:
    """A ~10x smaller version of ``spec`` for smoke runs: fewer users,
    shorter horizon, same shape (pins, faults, budgets untouched)."""
    w = spec.workload
    wq = dataclasses.replace(
        w,
        n_users=max(1000, w.n_users // 10),
        warmup_ns=w.warmup_ns / 5.0,
        measure_ns=w.measure_ns / 5.0,
    )
    return dataclasses.replace(spec, workload=wq)


def get(name: str, quick: bool = False) -> ScenarioSpec:
    try:
        spec = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r} (have: {', '.join(sorted(SCENARIOS))})"
        ) from None
    return quick_variant(spec) if quick else spec
