"""Scenario runner: one :class:`ScenarioSpec` in, one flat row out.

Builds the testbed the spec describes (topology, placement, fault
campaign), creates the Zipf namespace (optionally pinning the hottest
objects onto one node — the hot-shard lever), drives the open-loop
engine, and reduces the run to a flat, CSV-friendly row: throughput,
latency percentiles, per-node skew, overload and fault counters, the
schedule digest (the CI determinism handle) and — when the spec carries
budgets — a per-phase SLO verdict via :mod:`repro.slo`.

Rows are deterministic functions of ``(spec, seed)``: everything the
simulation consumes is derived from the seed, so the ``scenario_matrix``
experiment can fan rows out across processes and still produce
byte-identical CSVs (the property ``scripts/ci.sh`` pins).
"""

from __future__ import annotations

import dataclasses
from typing import Generator, Optional

from .spec import ScenarioSpec

__all__ = ["run_scenario", "scenario_row_keys"]

#: stable row schema (CSV column order)
scenario_row_keys = (
    "scenario", "protocol", "engine", "n_users", "n_storage",
    "issued", "ops", "failures", "offered_kops_s", "kops_s",
    "goodput_gbps", "p50_ns", "p99_ns", "p999_ns",
    "active_users", "peak_inflight", "hot_node", "hot_share",
    "slo_ok", "slo_failed", "quiesced", "schedule_digest",
)


def run_scenario(
    spec: ScenarioSpec,
    seed: int,
    engine: str = "aggregated",
    params_base=None,
    timings: Optional[dict] = None,
    sanitize: bool = False,
) -> dict:
    """Run one scenario end to end and return its row.

    ``timings``, when given, receives deterministic simulator-side cost
    figures (``events`` dispatched) that don't belong in the row — the
    perf harness wants them, CSV determinism doesn't.  With
    ``sanitize=True`` the run executes under :mod:`repro.simsan` (same
    row, byte-identical schedule) and ``timings["sanitizer"]`` receives
    the quiesce-swept :class:`~repro.simsan.Report`."""
    from ..dfs.layout import ReplicationSpec
    from ..experiments.common import installer_for
    from ..params import MiB, SimParams
    from ..workloads.openloop import open_loop_write_load

    spec.validate()
    base = params_base or SimParams()
    p = dataclasses.replace(
        base, storage_capacity_bytes=spec.topology.storage_mib * MiB
    )
    if spec.faults.loss > 0.0 or spec.faults.corrupt > 0.0:
        p = p.with_faults(
            seed=seed,
            loss_prob=spec.faults.loss,
            corrupt_prob=spec.faults.corrupt,
            retransmit=True,
        )
    elif spec.faults.kill_node_index is not None:
        # node crashes need the reliability layer for bounded-time nacks
        p = p.with_faults(retransmit=True, seed=seed)

    from ..dfs.cluster import build_testbed

    tb = build_testbed(
        n_storage=spec.topology.n_storage,
        n_clients=spec.topology.n_clients,
        params=p,
        telemetry=spec.telemetry,
        placement=spec.topology.placement,
        sanitize=sanitize,
    )
    installer = installer_for(spec.protocol)
    if installer is not None:
        installer(tb)

    if spec.faults.kill_node_index is not None:
        victim = tb.metadata.nodes[spec.faults.kill_node_index]
        t_kill = tb.sim.now + spec.faults.kill_at_ns

        def killer() -> Generator:
            yield tb.sim.timeout(t_kill - tb.sim.now)
            tb.node(victim).fail()

        tb.sim.process(killer(), name="scenario-killer")

    wl = dataclasses.replace(spec.workload, seed=seed)
    replication = (
        ReplicationSpec(k=spec.replication_k) if spec.replication_k > 1 else None
    )
    pin_node = (
        tb.metadata.nodes[spec.pin_node_index] if spec.pin_top > 0 else None
    )
    res, node_counts = open_loop_write_load(
        tb,
        wl,
        protocol=spec.protocol,
        replication=replication,
        object_bytes=spec.object_bytes,
        pin_top=spec.pin_top,
        pin_node=pin_node,
        engine=engine,
    )

    hot_node, hot_count = "", 0
    for node in sorted(node_counts):
        if node_counts[node] > hot_count:
            hot_node, hot_count = node, node_counts[node]
    hot_share = hot_count / res.issued if res.issued else 0.0

    slo_ok, slo_failed = True, ""
    if spec.slo_budgets:
        from ..slo import SloSpec, evaluate

        assert res.phase_latency is not None, "budgets need telemetry phases"
        report = evaluate(
            SloSpec(budgets=dict(spec.slo_budgets)),
            res.phase_latency,
            spec.name,
            res.ops,
            0.0,
        )
        slo_ok = report.slo_ok
        slo_failed = ";".join(
            key for key, _got, _budget, ok in report.checks if not ok
        )

    if timings is not None:
        timings["events"] = tb.sim.events_dispatched
    if sanitize:
        # leak sweeps are defined at quiesce; a run that never drained
        # (e.g. a killed node with ops the workload gave up on) reports
        # only schedule findings and orphans
        report = tb.sanitize_report(quiesce=res.quiesced)
        if timings is not None:
            timings["sanitizer"] = report

    lat = res.latency
    row = {
        "scenario": spec.name,
        "protocol": spec.protocol,
        "engine": engine,
        "n_users": wl.n_users,
        "n_storage": spec.topology.n_storage,
        "issued": res.issued,
        "ops": res.ops,
        "failures": res.failures_total,
        "offered_kops_s": round(res.offered_kops_per_s, 3),
        "kops_s": round(res.kops_per_s, 3),
        "goodput_gbps": round(res.goodput_gbps, 4),
        "p50_ns": lat["p50"] if lat else None,
        "p99_ns": lat["p99"] if lat else None,
        "p999_ns": lat["p999"] if lat else None,
        "active_users": res.active_users,
        "peak_inflight": res.inflight_peak,
        "hot_node": hot_node,
        "hot_share": round(hot_share, 4),
        "slo_ok": slo_ok,
        "slo_failed": slo_failed,
        "quiesced": res.quiesced,
        "schedule_digest": res.schedule_digest[:16],
    }
    assert tuple(row) == scenario_row_keys
    return row
