"""Declarative workload scenarios and the matrix runner.

* :mod:`repro.scenarios.spec` — the :class:`ScenarioSpec` tree
  (topology × population × popularity × size × faults × protocol) with
  dict/TOML round-trips;
* :mod:`repro.scenarios.builtin` — the headline scenarios
  (``hot_shard``, ``incast``, …) and the default matrix;
* :mod:`repro.scenarios.matrix` — spec + seed → one deterministic row.
"""

from .builtin import MATRIX_NAMES, QUICK_NAMES, SCENARIOS, get, quick_variant
from .matrix import run_scenario, scenario_row_keys
from .spec import (
    FaultCampaign,
    ScenarioSpec,
    TopologySpec,
    load_toml,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "ScenarioSpec",
    "TopologySpec",
    "FaultCampaign",
    "spec_from_dict",
    "spec_to_dict",
    "load_toml",
    "SCENARIOS",
    "MATRIX_NAMES",
    "QUICK_NAMES",
    "get",
    "quick_variant",
    "run_scenario",
    "scenario_row_keys",
]
