"""Simulator performance snapshot and regression guard.

``python -m repro perf`` collects these wall-clock figures of merit:

* **kernel** — raw timeout-schedule-dispatch event throughput of the
  discrete-event engine (no network stack);
* **pipeline** — a burst of steady-state full-stack 64 KiB sPIN writes:
  per-write events dispatched, packets through the switch, and the
  derived events-per-packet cost of the packet pipeline;
* **sweep** — a small experiment sweep run serially and with two worker
  processes, recording the parallel speedup of :mod:`repro.runner`;
* **parallel** — one big closed-loop simulation run on the serial
  kernel vs the partitioned engine (``repro.simnet.parallel``), inline
  and forked, recording kernel-event throughput, speedups, and a
  result-equality verdict (worker pools are warmed before the clock
  starts, so fork/import cost never pollutes the wall numbers);
* **workload** — the million-user open-loop ``hot_shard_1m`` scenario
  through the aggregated flow generators: simulated-users and kernel
  events per wall-second on one core, plus the schedule digest as a
  determinism gate.

``--section`` restricts both collection and checking (CI gates the
machine-sensitive kernel number at a tight tolerance without paying for
the full suite).

``--out BENCH_simulator.json`` snapshots the numbers;
``--check BENCH_simulator.json`` re-measures and fails (exit 1) if the
machine-independent event counts grew or throughput dropped below
``(1 - tolerance)`` of the committed baseline.  Events-per-packet is
deterministic, so it gets a tight 5% bound; throughput numbers get the
wide default (30%).  Kernel and pipeline throughput are timed with
``time.process_time`` — per consumed CPU second, which equals wall time
on a quiet machine but stays stable when a shared CI box throttles or
preempts the process (the sweep comparison is genuinely wall-clock:
it measures multi-process parallelism).
"""

from __future__ import annotations

# simlint: disable-file=SIM101 -- this module IS the wall-clock harness:
# it measures the simulator's own event throughput per CPU second

import argparse
import json
import os
import platform
import time
from typing import Any, Dict, List, Optional

__all__ = ["collect_snapshot", "check_against", "main"]


def _kernel_events_per_s(repeats: int = 8) -> float:
    """Best-of-N event throughput of the bare engine (matches the shape
    of benchmarks/bench_simulator_perf.py::test_kernel_event_throughput,
    scaled up so one run is long enough to time without a harness).
    The first run is interpreter warm-up and is discarded."""
    from .simnet import Simulator

    def once() -> float:
        sim = Simulator()

        def ping(n):
            for _ in range(n):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.process(ping(2000))
        t0 = time.process_time()
        sim.run()
        return sim.events_dispatched / (time.process_time() - t0)

    once()  # warm-up
    return max(once() for _ in range(repeats))


def _pipeline_snapshot(repeats: int = 5, inner: int = 10) -> Dict[str, Any]:
    """Steady-state 64 KiB sPIN writes through the full NIC/accelerator
    stack.  Event and packet counts are deterministic per write; wall
    time is best-of-N over a burst of ``inner`` writes — coalescing made
    a single write sub-millisecond, too short to time reliably."""
    import numpy as np

    from .dfs.client import DfsClient
    from .dfs.cluster import build_testbed
    from .protocols import install_spin_targets

    events = packets = 0
    best_wall = float("inf")
    data = np.zeros(64 * 1024, np.uint8)
    for _ in range(repeats):
        tb = build_testbed(n_storage=2)
        install_spin_targets(tb)
        c = DfsClient(tb)
        c.create("/f", size=64 * 1024)
        assert c.write_sync("/f", data, protocol="spin").ok  # warm-up
        ev0, pk0 = tb.sim.events_dispatched, tb.net.switch.rx_packets
        t0 = time.process_time()
        for _ in range(inner):
            out = c.write_sync("/f", data, protocol="spin")
        wall = (time.process_time() - t0) / inner
        assert out.ok
        events = (tb.sim.events_dispatched - ev0) // inner
        packets = (tb.net.switch.rx_packets - pk0) // inner
        best_wall = min(best_wall, wall)
    return {
        "events": events,
        "packets": packets,
        "events_per_packet": round(events / packets, 3),
        "events_per_wall_s": round(events / best_wall),
        "packets_per_wall_s": round(packets / best_wall),
    }


def _sweep_snapshot(jobs: int = 2) -> Dict[str, Any]:
    """Serial vs parallel wall time for a sweep heavy enough that pool
    startup does not dominate (fig09 --quick)."""
    from .experiments import fig09_replication_latency as mod

    t0 = time.perf_counter()
    rows_serial = mod.run(quick=True, jobs=1, cache=False)
    serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    rows_par = mod.run(quick=True, jobs=jobs, cache=False)
    par = time.perf_counter() - t0
    assert json.dumps(rows_serial, sort_keys=True) == json.dumps(rows_par, sort_keys=True)
    from .runner import LAST_STATS

    return {
        "experiment": mod.ID,
        "points": len(rows_serial),
        "jobs": jobs,
        # effective worker count after the runner's cpu/point clamping
        "cpus_used": LAST_STATS.jobs,
        "serial_wall_s": round(serial, 3),
        "parallel_wall_s": round(par, 3),
        "speedup": round(serial / par, 2) if par > 0 else 0.0,
    }


def _physical_cpus() -> Optional[int]:
    """Distinct (physical id, core id) pairs from /proc/cpuinfo, or None
    when the platform does not expose it (SMT makes this differ from the
    logical count)."""
    pairs = set()
    phys = core = None
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if ":" not in line:
                    phys = core = None
                    continue
                key, _, val = line.partition(":")
                key = key.strip()
                if key == "physical id":
                    phys = val.strip()
                elif key == "core id":
                    core = val.strip()
                if phys is not None and core is not None:
                    pairs.add((phys, core))
                    phys = core = None
    except OSError:
        return None
    return len(pairs) or None


def _meta() -> Dict[str, Any]:
    try:
        affinity: Optional[int] = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        affinity = None
    try:
        loadavg: Optional[List[float]] = [round(x, 2) for x in os.getloadavg()]
    except OSError:  # pragma: no cover - non-POSIX
        loadavg = None
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        # parallel speedups (sweep pool and partitioned engine alike)
        # are bounded by these; on a 1-CPU box extra workers can only
        # add overhead — record all of it so a snapshot says what the
        # box could possibly have delivered
        "cpus": os.cpu_count(),
        "cpus_logical": os.cpu_count(),
        "cpus_physical": _physical_cpus(),
        "cpus_affinity": affinity,
        "loadavg": loadavg,
    }


def _parallel_snapshot(partitions: int = 4) -> Dict[str, Any]:
    """One big closed-loop simulation, serial vs partitioned (inline and
    forked): kernel-event throughput, wall time, and equality of the
    load results.  Speedup > 1 needs real cores; on a 1-CPU container
    the honest number is <= 1 and the value of the section is the
    equality verdict plus the per-mode event rates."""
    from .dfs.cluster import build_testbed
    from .workloads import LoadSpec, closed_loop_write_load

    spec = LoadSpec(n_clients=8, outstanding=2, think_ns=2_000.0,
                    warmup_ns=50_000.0, measure_ns=300_000.0, seed=7)

    def once(k: int, mode: str) -> Dict[str, Any]:
        tb = build_testbed(n_storage=64, n_clients=4,
                           partitions=k, parallel_mode=mode)
        # warm the forked worker pool before the clock starts: fork +
        # import cost is a one-shot setup artifact, not simulation
        # throughput (it used to be counted and reported 0.22x)
        start = getattr(tb.sim, "start_workers", None)
        if start is not None:
            start()
        t0 = time.perf_counter()
        res = closed_loop_write_load(tb, 16 * 1024, "raw", spec)
        wall = time.perf_counter() - t0
        tb.finish()
        events = tb.sim.events_dispatched
        return {
            "events": events,
            "wall_s": round(wall, 3),
            "events_per_wall_s": round(events / wall) if wall > 0 else 0,
            "result": (res.ops, res.bytes, res.issued, res.failures,
                       res.elapsed_ns),
        }

    serial = once(1, "inline")
    inline = once(partitions, "inline")
    forked = once(partitions, "process")
    out = {
        "scenario": f"closed_loop 64sn raw 16KiB x{partitions}",
        "partitions": partitions,
        "serial": serial,
        "inline": inline,
        "process": forked,
        "speedup_inline": round(serial["wall_s"] / inline["wall_s"], 2)
        if inline["wall_s"] else 0.0,
        "speedup_process": round(serial["wall_s"] / forked["wall_s"], 2)
        if forked["wall_s"] else 0.0,
        "identical": serial["result"] == inline["result"] == forked["result"],
    }
    for d in (serial, inline, forked):
        d.pop("result")
    return out


def _workload_snapshot() -> Dict[str, Any]:
    """The acceptance monster: the 1,000,000-user ``hot_shard_1m``
    open-loop scenario (three simulated minutes of Zipf-skewed traffic
    through the aggregated flow generators) on one core.  Records how
    many simulated users and kernel events one wall-second buys."""
    from .runner import point_seed
    from .scenarios import get, run_scenario

    spec = get("hot_shard_1m")
    seed = point_seed("scenario_matrix",
                      {"scenario": spec.name, "quick": False})
    timings: Dict[str, Any] = {}
    t0 = time.perf_counter()
    row = run_scenario(spec, seed=seed, timings=timings)
    wall = time.perf_counter() - t0
    return {
        "scenario": spec.name,
        "n_users": spec.workload.n_users,
        "sim_seconds": round(spec.workload.horizon_ns / 1e9, 1),
        "issued": row["issued"],
        "ops": row["ops"],
        "hot_share": row["hot_share"],
        "events": timings["events"],
        "wall_s": round(wall, 1),
        "users_per_wall_s": round(spec.workload.n_users / wall),
        "requests_per_wall_s": round(row["issued"] / wall),
        "events_per_wall_s": round(timings["events"] / wall),
        "schedule_digest": row["schedule_digest"],
    }


SECTIONS = ("kernel", "pipeline", "sweep", "parallel", "workload")


def collect_snapshot(sweep_jobs: int = 2,
                     sections: Optional[List[str]] = None) -> Dict[str, Any]:
    want = set(sections or SECTIONS)
    snap: Dict[str, Any] = {"meta": _meta()}
    if "kernel" in want:
        snap["kernel_events_per_s"] = round(_kernel_events_per_s())
    if "pipeline" in want:
        snap["pipeline"] = _pipeline_snapshot()
    if "sweep" in want:
        snap["sweep"] = _sweep_snapshot(jobs=sweep_jobs)
    if "parallel" in want:
        snap["parallel"] = _parallel_snapshot()
    if "workload" in want:
        snap["workload"] = _workload_snapshot()
    return snap


def check_against(snap: Dict[str, Any], base: Dict[str, Any],
                  tolerance: float = 0.30) -> List[str]:
    """Compare a fresh snapshot against a committed baseline.  Returns a
    list of human-readable failures (empty = pass).  Sections absent
    from either side (``--section``) are skipped."""
    failures: List[str] = []

    def floor(name: str, got: float, want: float, tol: float = tolerance) -> None:
        if got < want * (1.0 - tol):
            failures.append(
                f"{name}: {got:,.0f} < {(1 - tol):.0%} of baseline {want:,.0f}"
            )

    # the bare-kernel microbenchmark is the most frequency/SMT-sensitive
    # number (tens of ms of pure dispatch); give it double headroom
    if "kernel_events_per_s" in snap and "kernel_events_per_s" in base:
        floor("kernel_events_per_s", snap["kernel_events_per_s"],
              base["kernel_events_per_s"], tol=min(2 * tolerance, 0.9))
    if "pipeline" in snap and "pipeline" in base:
        floor("pipeline.events_per_wall_s",
              snap["pipeline"]["events_per_wall_s"],
              base["pipeline"]["events_per_wall_s"])

        # deterministic counts: any growth is a real pipeline regression
        got_epp = snap["pipeline"]["events_per_packet"]
        base_epp = base["pipeline"]["events_per_packet"]
        if got_epp > base_epp * 1.05:
            failures.append(
                f"pipeline.events_per_packet: {got_epp} > baseline {base_epp} (+5% cap)"
            )
    # the partitioned engine's equality verdict is a hard correctness
    # gate whenever the section was collected; the speedups are
    # machine-bound facts, recorded but never gated
    if "parallel" in snap and not snap["parallel"]["identical"]:
        failures.append(
            "parallel: partitioned results diverged from the serial kernel"
        )
    if "workload" in snap and "workload" in base:
        floor("workload.users_per_wall_s",
              snap["workload"]["users_per_wall_s"],
              base["workload"]["users_per_wall_s"])
        floor("workload.events_per_wall_s",
              snap["workload"]["events_per_wall_s"],
              base["workload"]["events_per_wall_s"])
        # the schedule is a pure function of the spec + seed: any digest
        # drift is a determinism regression, not a perf one
        if snap["workload"]["schedule_digest"] != base["workload"]["schedule_digest"]:
            failures.append(
                "workload: schedule digest drifted from baseline "
                f"({snap['workload']['schedule_digest']} != "
                f"{base['workload']['schedule_digest']})"
            )
    return failures


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro perf",
        description="Measure simulator performance; snapshot or check a baseline.",
    )
    ap.add_argument("--out", metavar="PATH",
                    help="write the snapshot as JSON (e.g. BENCH_simulator.json)")
    ap.add_argument("--check", metavar="PATH",
                    help="compare against a committed baseline; exit 1 on regression")
    ap.add_argument("--tolerance", type=float, default=0.30, metavar="FRAC",
                    help="allowed wall-clock slowdown vs baseline (default 0.30)")
    ap.add_argument("--sweep-jobs", type=int, default=2, metavar="N",
                    help="worker processes for the sweep comparison (default 2)")
    ap.add_argument("--section", action="append", choices=list(SECTIONS),
                    metavar="NAME", dest="sections",
                    help="collect/check only this section (repeatable); "
                         f"default: all of {', '.join(SECTIONS)}")
    args = ap.parse_args(argv)

    snap = collect_snapshot(sweep_jobs=args.sweep_jobs, sections=args.sections)
    if "kernel_events_per_s" in snap:
        print(f"kernel   : {snap['kernel_events_per_s']:,.0f} events/s")
    if "pipeline" in snap:
        pipe = snap["pipeline"]
        print(f"pipeline : {pipe['events_per_wall_s']:,.0f} events/s, "
              f"{pipe['packets_per_wall_s']:,.0f} packets/s, "
              f"{pipe['events_per_packet']} events/packet "
              f"({pipe['events']} events / {pipe['packets']} packets)")
    if "sweep" in snap:
        sweep = snap["sweep"]
        print(f"sweep    : {sweep['experiment']} x{sweep['points']} serial "
              f"{sweep['serial_wall_s']}s vs jobs={sweep['jobs']} "
              f"{sweep['parallel_wall_s']}s ({sweep['speedup']}x)")
    if "parallel" in snap:
        par = snap["parallel"]
        print(f"parallel : {par['scenario']}: serial "
              f"{par['serial']['events_per_wall_s']:,.0f} ev/s vs inline "
              f"{par['inline']['events_per_wall_s']:,.0f} ev/s "
              f"({par['speedup_inline']}x) vs process "
              f"{par['process']['events_per_wall_s']:,.0f} ev/s "
              f"({par['speedup_process']}x), "
              f"identical={par['identical']}")
    if "workload" in snap:
        wl = snap["workload"]
        print(f"workload : {wl['scenario']}: {wl['n_users']:,} users / "
              f"{wl['sim_seconds']}s sim in {wl['wall_s']}s wall — "
              f"{wl['users_per_wall_s']:,} users/s, "
              f"{wl['requests_per_wall_s']:,} req/s, "
              f"{wl['events_per_wall_s']:,} events/s")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"snapshot written to {args.out}")

    if args.check:
        with open(args.check) as fh:
            base = json.load(fh)
        failures = check_against(snap, base, tolerance=args.tolerance)
        if failures:
            print("PERF REGRESSION:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print(f"perf check vs {args.check} passed "
              f"(tolerance {args.tolerance:.0%} on wall-clock, 5% on events/packet)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
