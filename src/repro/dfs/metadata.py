"""Metadata service: indexes objects and allocates storage extents.

Control-plane component (Fig. 1a): clients query it for file layouts
(step 1/2) before touching storage nodes (step 3).  Storage is managed
by a per-node free-list allocator (:mod:`repro.dfs.allocator`) —
``delete()`` and recovery-driven ``update_layout()`` return extents to
the pool, so churny workloads never leak space — and placement is
delegated to a pluggable :class:`~repro.dfs.placement.PlacementPolicy`
over capacity- and liveness-filtered candidates.  ``create()`` is
transactional: a failure mid-layout rolls back every extent already
allocated and the policy's rotation cursor.

Liveness is fed by the heartbeat monitor (:mod:`repro.dfs.monitor`):
nodes marked dead stop receiving placements until marked alive again.

Consistency coordination (who may write what, capability revocation) is
control-plane and out of the paper's scope (§VII); we expose a simple
exclusive-writer check to make the examples honest.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .allocator import AllocError, ExtentAllocator
from .capability import CapabilityAuthority, Rights
from .layout import EcSpec, Extent, FileLayout, ReplicationSpec
from .placement import NodeView, PlacementPolicy, make_policy

__all__ = ["MetadataService", "MetadataError"]


class MetadataError(RuntimeError):
    pass


class MetadataService:
    """Object index + extent allocator + ticket issuing front end."""

    def __init__(
        self,
        storage_nodes: Sequence[str],
        node_capacity: int,
        authority: CapabilityAuthority,
        placement: Union[str, PlacementPolicy] = "roundrobin",
        failure_domains: Optional[Dict[str, int]] = None,
    ):
        if not storage_nodes:
            raise MetadataError("need at least one storage node")
        self.nodes = list(storage_nodes)
        self.node_capacity = node_capacity
        self.authority = authority
        self.allocator = ExtentAllocator(node_capacity, self.nodes)
        self.policy = make_policy(placement)
        #: failure domain per node; defaults to one domain per node, so
        #: the domain policy degenerates to plain spreading
        self.domains: Dict[str, int] = (
            dict(failure_domains)
            if failure_domains is not None
            else {n: i for i, n in enumerate(self.nodes)}
        )
        self._dead: Dict[str, bool] = {}
        self._objects: Dict[str, object] = {}
        self._object_ids = itertools.count(1)
        self._writers: Dict[str, int] = {}

    # ---------------------------------------------------------- liveness
    def mark_dead(self, node: str) -> None:
        """Exclude ``node`` from placement (heartbeat monitor verdict)."""
        self._dead[node] = True

    def mark_alive(self, node: str) -> None:
        self._dead.pop(node, None)

    def is_alive(self, node: str) -> bool:
        return node not in self._dead

    def dead_nodes(self) -> List[str]:
        return [n for n in self.nodes if n in self._dead]

    # ------------------------------------------------------------ alloc
    def _alloc_on(self, node: str, length: int) -> Extent:
        try:
            off = self.allocator.alloc(node, length)
        except AllocError as e:
            raise MetadataError(f"storage node {node} full: {e}") from None
        return Extent(node=node, addr=off, length=length)

    def allocate_extent(self, node: str, length: int) -> Extent:
        """Allocate a replacement extent on a specific node (used by the
        recovery coordinator when rebuilding lost chunks)."""
        if not self.is_alive(node):
            raise MetadataError(f"storage node {node} is dead")
        return self._alloc_on(node, length)

    def allocate_auto(self, length: int, exclude: Sequence[str] = ()) -> Extent:
        """Allocate one extent on a policy-picked healthy node (used by
        the re-replicator to place repaired copies)."""
        (node,) = self._pick_nodes(1, length, exclude=exclude)
        return self._alloc_on(node, length)

    def free_extent(self, extent: Extent) -> None:
        """Return one extent to the pool."""
        try:
            self.allocator.free(extent.node, extent.addr, extent.length)
        except AllocError as e:
            raise MetadataError(f"bad free on {extent.node}: {e}") from None

    def _free_layout(self, layout: object) -> None:
        """Free every extent a layout pins.  Striped layouts are
        aliases — their regions are registered (and freed) under their
        own ``path#rN`` entries."""
        if isinstance(layout, FileLayout):
            for e in list(layout.extents) + list(layout.parity_extents):
                self.free_extent(e)

    def update_layout(self, path: str, layout: FileLayout) -> None:
        """Swap in a rebuilt placement after recovery.

        Extents of the old layout that the new one no longer references
        are returned to the allocator — the seed leaked them forever.
        """
        old = self._objects.get(path)
        if old is None:
            raise MetadataError(f"no such object {path!r}")
        keep = {
            (e.node, e.addr, e.length)
            for e in list(layout.extents) + list(layout.parity_extents)
        }
        if isinstance(old, FileLayout):
            for e in list(old.extents) + list(old.parity_extents):
                if (e.node, e.addr, e.length) not in keep:
                    self.free_extent(e)
        self._objects[path] = layout

    # -------------------------------------------------------- accounting
    def allocated_bytes(self) -> int:
        """Bytes currently held by the allocator across all nodes."""
        return self.allocator.allocated_bytes()

    def live_layout_bytes(self) -> int:
        """Bytes pinned by live (non-alias) layouts.  With no external
        ``allocate_extent`` holdings in flight this equals
        :meth:`allocated_bytes` — the leak-freedom invariant."""
        total = 0
        for lay in self._objects.values():
            if isinstance(lay, FileLayout):
                total += sum(
                    e.length for e in list(lay.extents) + list(lay.parity_extents)
                )
        return total

    def paths(self) -> List[str]:
        """All registered paths, in creation order (deterministic)."""
        return list(self._objects)

    # --------------------------------------------------------- placement
    def _views(self, length: int, exclude: Sequence[str]) -> List[NodeView]:
        """Candidate views: alive, not excluded, room for the extent."""
        ex = set(exclude)
        out = []
        for i, n in enumerate(self.nodes):
            if n in ex or n in self._dead:
                continue
            if not self.allocator.can_fit(n, length):
                continue
            out.append(
                NodeView(
                    name=n,
                    index=i,
                    free_bytes=self.allocator.free_bytes(n),
                    domain=self.domains.get(n, i),
                )
            )
        return out

    def _pick_nodes(
        self, n: int, length: int, exclude: Sequence[str] = ()
    ) -> List[str]:
        views = self._views(length, exclude)
        if len(views) < n:
            alive = sum(1 for x in self.nodes if x not in self._dead)
            raise MetadataError(
                f"need {n} distinct storage nodes with {length} B free, "
                f"have {len(views)} eligible ({alive} alive of "
                f"{len(self.nodes)})"
            )
        return self.policy.pick(views, n)

    def _resolve_pins(self, pin_nodes: Sequence[str], n: int) -> List[str]:
        """Validate an explicit placement request (workload hot-spot
        scenarios pin popular objects onto chosen nodes)."""
        pins = list(pin_nodes)
        if len(pins) != n:
            raise MetadataError(
                f"pin_nodes names {len(pins)} nodes, layout needs {n}"
            )
        if len(set(pins)) != len(pins):
            raise MetadataError("pin_nodes must name distinct nodes")
        for node in pins:
            if node not in self.allocator:
                raise MetadataError(f"pin_nodes: unknown storage node {node!r}")
            if node in self._dead:
                raise MetadataError(f"pin_nodes: node {node!r} is dead")
        return pins

    # ------------------------------------------------------------ create
    def create(
        self,
        path: str,
        size: int,
        replication: Optional[ReplicationSpec] = None,
        ec: Optional[EcSpec] = None,
        pin_nodes: Optional[Sequence[str]] = None,
    ) -> FileLayout:
        """Create an object and pin its placement — transactionally.

        Replication and EC are mutually exclusive (§VI-B).  If anything
        fails mid-layout, every extent already allocated is freed and
        the placement cursor is restored, so a failed create leaves no
        trace (the seed leaked both).  ``pin_nodes`` bypasses the
        placement policy with an explicit node list (length must match
        the layout's extent count); the policy cursor is untouched so
        interleaved pinned/policy creates stay deterministic.
        """
        if path in self._objects:
            raise MetadataError(f"object {path!r} already exists")
        if replication is not None and ec is not None:
            raise MetadataError("replication and EC are mutually exclusive (§VI-B)")
        if size <= 0:
            raise MetadataError("object size must be positive")

        allocated: List[Extent] = []
        token = self.policy.snapshot()

        def alloc(node: str, length: int) -> Extent:
            ext = self._alloc_on(node, length)
            allocated.append(ext)
            return ext

        extents: tuple
        parity: tuple = ()
        resiliency = "none"
        try:
            if replication is not None and replication.k > 1:
                if pin_nodes is not None:
                    nodes = self._resolve_pins(pin_nodes, replication.k)
                else:
                    nodes = self._pick_nodes(replication.k, size)
                extents = tuple(alloc(n, size) for n in nodes)
                resiliency = "replication"
            elif ec is not None:
                chunk = -(-size // ec.k)
                if pin_nodes is not None:
                    nodes = self._resolve_pins(pin_nodes, ec.k + ec.m)
                else:
                    nodes = self._pick_nodes(ec.k + ec.m, chunk)
                extents = tuple(alloc(n, chunk) for n in nodes[: ec.k])
                parity = tuple(alloc(n, chunk) for n in nodes[ec.k :])
                resiliency = "ec"
            else:
                if pin_nodes is not None:
                    (node,) = self._resolve_pins(pin_nodes, 1)
                else:
                    (node,) = self._pick_nodes(1, size)
                extents = (alloc(node, size),)
        except MetadataError:
            for e in allocated:
                self.free_extent(e)
            self.policy.restore(token)
            raise
        # the object id is burned only once the allocation committed
        layout = FileLayout(
            object_id=next(self._object_ids),
            size=size,
            extents=extents,
            resiliency=resiliency,
            replication=replication if resiliency == "replication" else None,
            ec=ec,
            parity_extents=parity,
        )
        self._objects[path] = layout
        return layout

    # ------------------------------------------------------------ query
    def lookup(self, path: str):
        try:
            return self._objects[path]
        except KeyError:
            raise MetadataError(f"no such object {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._objects

    def objects(self) -> Iterable[tuple]:
        """(path, layout) pairs in creation order."""
        return list(self._objects.items())

    def delete(self, path: str) -> None:
        if path not in self._objects:
            raise MetadataError(f"no such object {path!r}")
        layout = self._objects.pop(path)
        self._free_layout(layout)
        self._writers.pop(path, None)

    # ------------------------------------------------- write coordination
    def grant_write(self, path: str, client_id: int) -> bool:
        """Exclusive-writer capability granting (Ceph-style, §VII)."""
        holder = self._writers.get(path)
        if holder is not None and holder != client_id:
            return False
        self._writers[path] = client_id
        return True

    def revoke_write(self, path: str, client_id: int) -> None:
        if self._writers.get(path) == client_id:
            del self._writers[path]

    # ------------------------------------------------------------ tickets
    def issue_ticket(
        self, client_id: int, path: str, rights: Rights, expiry_ns: int = 2**63 - 1
    ):
        """Hand the client a capability for the whole object (including
        its redundancy extents, which forwarded requests re-validate)."""
        layout = self.lookup(path)
        return self.authority.issue(
            client_id=client_id,
            object_id=layout.object_id,
            addr=0,
            length=self.node_capacity,
            rights=rights,
            expiry_ns=expiry_ns,
        )
