"""Metadata service: indexes objects and allocates storage extents.

Control-plane component (Fig. 1a): clients query it for file layouts
(step 1/2) before touching storage nodes (step 3).  Placement is
round-robin with a bump allocator per node — enough to distribute
primaries, replicas, and parity chunks across distinct failure domains,
which is all the data-plane experiments need.

Consistency coordination (who may write what, capability revocation) is
control-plane and out of the paper's scope (§VII); we expose a simple
exclusive-writer check to make the examples honest.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence

from .capability import CapabilityAuthority, Rights
from .layout import EcSpec, Extent, FileLayout, ReplicationSpec

__all__ = ["MetadataService", "MetadataError"]


class MetadataError(RuntimeError):
    pass


class MetadataService:
    """Object index + extent allocator + ticket issuing front end."""

    def __init__(
        self,
        storage_nodes: Sequence[str],
        node_capacity: int,
        authority: CapabilityAuthority,
    ):
        if not storage_nodes:
            raise MetadataError("need at least one storage node")
        self.nodes = list(storage_nodes)
        self.node_capacity = node_capacity
        self.authority = authority
        self._cursor: Dict[str, int] = {n: 0 for n in self.nodes}
        self._rr = 0
        self._objects: Dict[str, FileLayout] = {}
        self._object_ids = itertools.count(1)
        self._writers: Dict[str, int] = {}

    # ------------------------------------------------------------ alloc
    def _alloc_on(self, node: str, length: int) -> Extent:
        off = self._cursor[node]
        if off + length > self.node_capacity:
            raise MetadataError(f"storage node {node} full")
        self._cursor[node] = off + length
        return Extent(node=node, addr=off, length=length)

    def allocate_extent(self, node: str, length: int) -> Extent:
        """Allocate a replacement extent on a specific node (used by the
        recovery coordinator when rebuilding lost chunks)."""
        return self._alloc_on(node, length)

    def update_layout(self, path: str, layout: FileLayout) -> None:
        """Swap in a rebuilt placement after recovery."""
        if path not in self._objects:
            raise MetadataError(f"no such object {path!r}")
        self._objects[path] = layout

    def _pick_nodes(self, n: int, exclude: Sequence[str] = ()) -> list[str]:
        avail = [x for x in self.nodes if x not in exclude]
        if len(avail) < n:
            raise MetadataError(
                f"need {n} distinct storage nodes, have {len(avail)} available"
            )
        picked = []
        for _ in range(n):
            picked.append(avail[self._rr % len(avail)])
            self._rr += 1
        # de-duplicate while preserving rotation
        seen, out = set(), []
        for node in picked:
            if node in seen:
                continue
            seen.add(node)
            out.append(node)
        i = 0
        while len(out) < n:
            cand = avail[i % len(avail)]
            i += 1
            if cand not in seen:
                seen.add(cand)
                out.append(cand)
        return out

    # ------------------------------------------------------------ create
    def create(
        self,
        path: str,
        size: int,
        replication: Optional[ReplicationSpec] = None,
        ec: Optional[EcSpec] = None,
    ) -> FileLayout:
        """Create an object and pin its placement.

        Replication and EC are mutually exclusive (§VI-B).
        """
        if path in self._objects:
            raise MetadataError(f"object {path!r} already exists")
        if replication is not None and ec is not None:
            raise MetadataError("replication and EC are mutually exclusive (§VI-B)")
        if size <= 0:
            raise MetadataError("object size must be positive")
        oid = next(self._object_ids)

        if replication is not None and replication.k > 1:
            nodes = self._pick_nodes(replication.k)
            extents = tuple(self._alloc_on(n, size) for n in nodes)
            layout = FileLayout(
                object_id=oid,
                size=size,
                extents=extents,
                resiliency="replication",
                replication=replication,
            )
        elif ec is not None:
            chunk = -(-size // ec.k)
            nodes = self._pick_nodes(ec.k + ec.m)
            data_nodes, parity_nodes = nodes[: ec.k], nodes[ec.k :]
            extents = tuple(self._alloc_on(n, chunk) for n in data_nodes)
            parity = tuple(self._alloc_on(n, chunk) for n in parity_nodes)
            layout = FileLayout(
                object_id=oid,
                size=size,
                extents=extents,
                resiliency="ec",
                ec=ec,
                parity_extents=parity,
            )
        else:
            (node,) = self._pick_nodes(1)
            layout = FileLayout(
                object_id=oid, size=size, extents=(self._alloc_on(node, size),)
            )
        self._objects[path] = layout
        return layout

    # ------------------------------------------------------------ query
    def lookup(self, path: str) -> FileLayout:
        try:
            return self._objects[path]
        except KeyError:
            raise MetadataError(f"no such object {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._objects

    def delete(self, path: str) -> None:
        if path not in self._objects:
            raise MetadataError(f"no such object {path!r}")
        del self._objects[path]
        self._writers.pop(path, None)

    # ------------------------------------------------- write coordination
    def grant_write(self, path: str, client_id: int) -> bool:
        """Exclusive-writer capability granting (Ceph-style, §VII)."""
        holder = self._writers.get(path)
        if holder is not None and holder != client_id:
            return False
        self._writers[path] = client_id
        return True

    def revoke_write(self, path: str, client_id: int) -> None:
        if self._writers.get(path) == client_id:
            del self._writers[path]

    # ------------------------------------------------------------ tickets
    def issue_ticket(
        self, client_id: int, path: str, rights: Rights, expiry_ns: int = 2**63 - 1
    ):
        """Hand the client a capability for the whole object (including
        its redundancy extents, which forwarded requests re-validate)."""
        layout = self.lookup(path)
        return self.authority.issue(
            client_id=client_id,
            object_id=layout.object_id,
            addr=0,
            length=self.node_capacity,
            rights=rights,
            expiry_ns=expiry_ns,
        )
