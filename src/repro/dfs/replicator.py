"""Re-replication engine: restore redundancy after node deaths.

When the heartbeat monitor (:mod:`repro.dfs.monitor`) declares a
storage node dead, the re-replicator walks the namespace in creation
order and enqueues one repair task per lost extent.  A bounded pool of
worker processes (``max_inflight``) drains the queue — so recovery
traffic competes with foreground load at a controlled intensity instead
of an unthrottled storm (the HDFS ``replication streams`` knob).

Repairs are *real* data-plane traffic, commanded over the control
plane: the metadata node posts a ``md_repair`` RPC to the surviving
replica's node, whose handler reads the replica over local PCIe and
posts a DFS write (service capability shipped in the RPC headers, same
validation path as client writes) to a policy-picked replacement node.
Recovery therefore shares wire, switch, and target resources with the
foreground workload and shows up honestly in its tail latency — and,
because the data never touches driver-side Python, the same path runs
unchanged under the partitioned engine (the source node may live in
any partition).  Erasure-coded objects delegate to the timed rebuild
coordinator (:func:`repro.protocols.recovery.rebuild_object`).

Every step is deterministic: tasks are enqueued in namespace order,
workers drain FIFO, and the repair schedule (a list of
:class:`RepairRecord`) is byte-identical across runs at a fixed seed —
the recovery-storm experiment digests it to prove that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.request import DfsHeader, WriteRequestHeader, request_header_bytes
from ..rdma.nic import fresh_greq_id
from ..simnet.resources import Store
from .capability import Rights
from .cluster import Testbed
from .layout import FileLayout
from .metadata import MetadataError
from .monitor import HeartbeatMonitor

__all__ = ["REPAIR_RPC", "ReplicatorConfig", "RepairTask", "RepairRecord",
           "ReReplicator"]

#: RPC the metadata node sends to a surviving replica's node to command
#: one extent repair (handler: read replica -> DMA -> DFS write to dst)
REPAIR_RPC = "md_repair"


@dataclass(frozen=True)
class ReplicatorConfig:
    """Recovery intensity knobs."""

    #: concurrent repair operations (bounds recovery's share of the
    #: network; HDFS calls this the replication-stream limit)
    max_inflight: int = 4


@dataclass(frozen=True)
class RepairTask:
    """One lost extent (or one EC object rebuild) to repair."""

    path: str
    #: index into extents + parity_extents; -1 for a whole-object EC rebuild
    slot: int
    #: the dead node the extent lived on ("" for EC rebuilds)
    node: str
    kind: str  # "copy" | "ec"
    t_queued: float


@dataclass(frozen=True)
class RepairRecord:
    """One completed repair (the deterministic schedule entry)."""

    path: str
    slot: int
    src: str
    dst: str
    nbytes: int
    t_queued: float
    t_start: float
    t_done: float


def _repair_rpc(node, headers, payload, src):
    """``md_repair`` handler, running on the surviving replica's node:
    read the replica over local PCIe, push it to the replacement as a
    real DFS write (capability shipped in the command), report back."""
    data = node.memory.read(headers["src_addr"], headers["src_len"])
    yield node.pcie.dma(headers["src_len"])
    greq = fresh_greq_id()
    dfs = DfsHeader(
        greq_id=greq, op="write", client_id=0,
        capability=headers["cap"], reply_to=node.name,
    )
    wrh = WriteRequestHeader(addr=headers["dst_addr"])
    res = yield node.nic.post_write(
        headers["dst"],
        data,
        headers={"dfs": dfs, "wrh": wrh, "write_len": headers["dst_len"]},
        header_bytes=request_header_bytes(dfs, wrh),
        greq_id=greq,
    )
    ok = bool(getattr(res, "ok", False))
    node.respond(
        src,
        headers["greq_id"],
        {"ok": ok, "nacks": getattr(res, "nacks", None)},
        error=not ok,
    )


class ReReplicator:
    """Bounded-concurrency repair worker pool fed by death events."""

    def __init__(
        self,
        testbed: Testbed,
        config: Optional[ReplicatorConfig] = None,
        monitor: Optional[HeartbeatMonitor] = None,
    ):
        self.testbed = testbed
        self.config = config or ReplicatorConfig()
        # the queue and workers are driver-side: under the partitioned
        # engine they live on the driver partition's kernel
        sim = getattr(testbed.sim, "driver_sim", testbed.sim)
        self._queue: Store = Store(sim, name="replicator.q")
        self.schedule: List[RepairRecord] = []
        self.failed_repairs: List[tuple] = []
        self.extents_repaired = 0
        self.bytes_repaired = 0
        self.last_done_t = 0.0
        self.outstanding = 0
        self.peak_inflight = 0
        #: the control-plane node commanding repairs (None -> legacy
        #: driver-driven data path, serial engine only)
        self.commander = monitor.mds if monitor is not None else None
        for node in testbed.storage.values():
            node.register_rpc(REPAIR_RPC, _repair_rpc)
        for w in range(self.config.max_inflight):
            sim.process(self._worker(), name=f"replicator.w{w}")
        if monitor is not None:
            monitor.on_death.append(self.on_node_death)

    # ----------------------------------------------------------- intake
    def on_node_death(self, node: str) -> None:
        """Scan the namespace and enqueue a task per lost extent."""
        md = self.testbed.metadata
        now = self.testbed.sim.now
        for path, layout in md.objects():
            if not isinstance(layout, FileLayout):
                continue
            all_ext = list(layout.extents) + list(layout.parity_extents)
            if layout.resiliency == "ec":
                # one rebuild covers every chunk the object lost
                if any(e.node == node for e in all_ext):
                    self._queue.put(
                        RepairTask(path=path, slot=-1, node="", kind="ec",
                                   t_queued=now)
                    )
                continue
            for slot, ext in enumerate(all_ext):
                if ext.node == node:
                    self._queue.put(
                        RepairTask(path=path, slot=slot, node=node,
                                   kind="copy", t_queued=now)
                    )

    def pending(self) -> int:
        """Tasks queued or in flight (0 == recovery quiesced)."""
        return len(self._queue.items) + self.outstanding

    # ---------------------------------------------------------- workers
    def _worker(self):
        while True:
            task = yield self._queue.get()
            self.outstanding += 1
            self.peak_inflight = max(self.peak_inflight, self.outstanding)
            try:
                yield from self._repair(task)
            finally:
                self.outstanding -= 1

    def _repair(self, task: RepairTask):
        md = self.testbed.metadata
        if not md.exists(task.path):
            return  # deleted while queued
        layout = md.lookup(task.path)
        if not isinstance(layout, FileLayout):
            return
        if task.kind == "ec":
            yield from self._repair_ec(task, layout)
            return
        all_ext = list(layout.extents) + list(layout.parity_extents)
        if task.slot >= len(all_ext):
            return
        ext = all_ext[task.slot]
        # re-validate: an earlier repair (or a client rewrite) may have
        # already moved this slot off the dead node
        if ext.node != task.node or md.is_alive(ext.node):
            return
        src_ext = next(
            (
                e
                for i, e in enumerate(all_ext)
                if i != task.slot and md.is_alive(e.node)
            ),
            None,
        )
        if src_ext is None:
            self.failed_repairs.append((task.path, task.slot, "no live replica"))
            return
        exclude = [e.node for e in all_ext]
        try:
            new_ext = md.allocate_auto(ext.length, exclude=exclude)
        except MetadataError as e:
            self.failed_repairs.append((task.path, task.slot, str(e)))
            return
        t_start = self.testbed.sim.now
        service_cap = self.testbed.authority.issue(
            client_id=0,
            object_id=layout.object_id,
            addr=0,
            length=self.testbed.params.storage_capacity_bytes,
            rights=Rights.WRITE,
        )
        if self.commander is not None:
            # command the surviving replica's node over the control
            # plane; its handler moves the bytes (works in any partition)
            res = yield self.commander.nic.post_rpc(
                src_ext.node,
                {
                    "rpc": REPAIR_RPC,
                    "src_addr": src_ext.addr,
                    "src_len": src_ext.length,
                    "dst": new_ext.node,
                    "dst_addr": new_ext.addr,
                    "dst_len": new_ext.length,
                    "object_id": layout.object_id,
                    "cap": service_cap,
                },
                header_bytes=64,
            )
            reply = getattr(res, "data", None) or {}
            if not (getattr(res, "ok", False) and reply.get("ok", False)):
                md.free_extent(new_ext)
                self.failed_repairs.append(
                    (task.path, task.slot,
                     f"write rejected: {reply.get('nacks')}")
                )
                return
        else:
            # legacy driver-driven path: touches remote node state from
            # driver-side Python, so it is valid on the serial engine only
            src_node = self.testbed.node(src_ext.node)
            data = src_node.memory.read(src_ext.addr, src_ext.length)
            yield src_node.pcie.dma(src_ext.length)
            greq = fresh_greq_id()
            dfs = DfsHeader(
                greq_id=greq, op="write", client_id=0,
                capability=service_cap, reply_to=src_node.name,
            )
            wrh = WriteRequestHeader(addr=new_ext.addr)
            res = yield src_node.nic.post_write(
                new_ext.node,
                data,
                headers={"dfs": dfs, "wrh": wrh, "write_len": new_ext.length},
                header_bytes=request_header_bytes(dfs, wrh),
                greq_id=greq,
            )
            if not getattr(res, "ok", False):
                md.free_extent(new_ext)
                self.failed_repairs.append(
                    (task.path, task.slot,
                     f"write rejected: {getattr(res, 'nacks', None)}")
                )
                return
        # commit: swap the slot in the *fresh* layout (other slots may
        # have been repaired concurrently); update_layout frees the
        # dead extent
        fresh = md.lookup(task.path)
        if not isinstance(fresh, FileLayout):
            md.free_extent(new_ext)
            return
        data_exts = list(fresh.extents)
        parity_exts = list(fresh.parity_extents)
        combined = data_exts + parity_exts
        if task.slot >= len(combined) or combined[task.slot] != ext:
            md.free_extent(new_ext)  # someone else repaired it first
            return
        if task.slot < len(data_exts):
            data_exts[task.slot] = new_ext
        else:
            parity_exts[task.slot - len(data_exts)] = new_ext
        md.update_layout(
            task.path,
            FileLayout(
                object_id=fresh.object_id,
                size=fresh.size,
                extents=tuple(data_exts),
                resiliency=fresh.resiliency,
                replication=fresh.replication,
                ec=fresh.ec,
                parity_extents=tuple(parity_exts),
            ),
        )
        now = self.testbed.sim.now
        self.schedule.append(
            RepairRecord(
                path=task.path,
                slot=task.slot,
                src=src_ext.node,
                dst=new_ext.node,
                nbytes=new_ext.length,
                t_queued=task.t_queued,
                t_start=t_start,
                t_done=now,
            )
        )
        self.extents_repaired += 1
        self.bytes_repaired += new_ext.length
        self.last_done_t = now

    def _repair_ec(self, task: RepairTask, layout: FileLayout):
        md = self.testbed.metadata
        dead = md.dead_nodes()
        all_ext = list(layout.extents) + list(layout.parity_extents)
        lost = [e for e in all_ext if not md.is_alive(e.node)]
        if not lost:
            return  # an earlier rebuild already covered this object
        # imported here: protocols -> dfs would otherwise be a cycle
        from ..ec.reed_solomon import DecodeError
        from ..protocols.recovery import rebuild_object

        t_start = self.testbed.sim.now
        try:
            ev = rebuild_object(self.testbed, task.path, failed=dead)
        except DecodeError as e:
            self.failed_repairs.append((task.path, -1, str(e)))
            return
        report = yield ev
        now = self.testbed.sim.now
        for new_ext in report.rebuilt_extents:
            self.schedule.append(
                RepairRecord(
                    path=task.path,
                    slot=-1,
                    src="ec-rebuild",
                    dst=new_ext.node,
                    nbytes=new_ext.length,
                    t_queued=task.t_queued,
                    t_start=t_start,
                    t_done=now,
                )
            )
            self.extents_repaired += 1
            self.bytes_repaired += new_ext.length
        self.last_done_t = now
