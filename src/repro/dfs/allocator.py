"""Free-list extent allocation for the metadata service.

The seed's bump allocator could only ever move its cursor forward, so
every ``delete()``/``update_layout()`` leaked the old extents and churny
workloads spuriously exhausted nodes.  This module replaces it with a
classic address-ordered free list per storage node: ``alloc`` is
first-fit, ``free`` reinserts the hole and coalesces with both
neighbours, and the bookkeeping is exact — ``used_bytes + sum(holes) ==
capacity`` at all times, which the control-plane tests assert after
create/delete/recover churn.

Everything is deterministic: no randomness, no hashing — holes are kept
sorted by address and nodes are dict-ordered.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, List, Sequence, Tuple

__all__ = ["AllocError", "FreeList", "ExtentAllocator"]


class AllocError(RuntimeError):
    """Allocation failure (no hole large enough) or free-list corruption
    (double free / overlapping free)."""


class FreeList:
    """Address-ordered free list over one node's ``[0, capacity)`` space."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise AllocError("capacity must be positive")
        self.capacity = capacity
        self.used = 0
        #: sorted, disjoint, non-adjacent (addr, length) holes
        self._holes: List[Tuple[int, int]] = [(0, capacity)]

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used

    def largest_hole(self) -> int:
        return max((ln for _, ln in self._holes), default=0)

    def can_fit(self, length: int) -> bool:
        return any(ln >= length for _, ln in self._holes)

    # ------------------------------------------------------------- alloc
    def alloc(self, length: int) -> int:
        """First-fit allocation; returns the extent's start address."""
        if length <= 0:
            raise AllocError("extent length must be positive")
        for i, (addr, ln) in enumerate(self._holes):
            if ln >= length:
                if ln == length:
                    del self._holes[i]
                else:
                    self._holes[i] = (addr + length, ln - length)
                self.used += length
                return addr
        raise AllocError(
            f"no hole of {length} B ({self.free_bytes} B free, "
            f"largest hole {self.largest_hole()} B)"
        )

    # -------------------------------------------------------------- free
    def free(self, addr: int, length: int) -> None:
        """Return ``[addr, addr+length)``; coalesces with both neighbours.

        Raises :class:`AllocError` on double frees or frees overlapping
        an existing hole — corruption is an error here, not at the next
        unlucky ``alloc``.
        """
        if length <= 0 or addr < 0 or addr + length > self.capacity:
            raise AllocError(f"bad free range [{addr}, {addr + length})")
        i = bisect_right(self._holes, (addr, length))
        prev_i, next_i = i - 1, i
        if prev_i >= 0:
            p_addr, p_len = self._holes[prev_i]
            if p_addr + p_len > addr:
                raise AllocError(
                    f"free of [{addr}, {addr + length}) overlaps hole "
                    f"[{p_addr}, {p_addr + p_len}) — double free?"
                )
        if next_i < len(self._holes):
            n_addr, _ = self._holes[next_i]
            if addr + length > n_addr:
                raise AllocError(
                    f"free of [{addr}, {addr + length}) overlaps hole "
                    f"at {n_addr} — double free?"
                )
        # coalesce: absorb the previous and/or next hole when adjacent
        start, end = addr, addr + length
        if prev_i >= 0:
            p_addr, p_len = self._holes[prev_i]
            if p_addr + p_len == start:
                start = p_addr
                del self._holes[prev_i]
                next_i -= 1
        if next_i < len(self._holes):
            n_addr, n_len = self._holes[next_i]
            if end == n_addr:
                end = n_addr + n_len
                del self._holes[next_i]
        insort(self._holes, (start, end - start))
        self.used -= length

    # ------------------------------------------------------------- audit
    def check(self) -> None:
        """Assert the structural invariants (tests call this)."""
        total = 0
        prev_end = -1
        for addr, ln in self._holes:
            assert ln > 0, "empty hole"
            assert addr > prev_end, "unsorted/overlapping/adjacent holes"
            prev_end = addr + ln
            total += ln
        assert prev_end <= self.capacity, "hole past capacity"
        assert total + self.used == self.capacity, (
            f"accounting defect: {total} free + {self.used} used "
            f"!= {self.capacity}"
        )


class ExtentAllocator:
    """Per-node free lists, keyed in registration order."""

    def __init__(self, node_capacity: int, nodes: Sequence[str] = ()):
        self.node_capacity = node_capacity
        self._lists: Dict[str, FreeList] = {}
        for n in nodes:
            self.add_node(n)

    def add_node(self, node: str) -> None:
        if node in self._lists:
            raise AllocError(f"node {node!r} already registered")
        self._lists[node] = FreeList(self.node_capacity)

    def __contains__(self, node: str) -> bool:
        return node in self._lists

    def _list(self, node: str) -> FreeList:
        try:
            return self._lists[node]
        except KeyError:
            raise AllocError(f"unknown storage node {node!r}") from None

    def alloc(self, node: str, length: int) -> int:
        return self._list(node).alloc(length)

    def free(self, node: str, addr: int, length: int) -> None:
        self._list(node).free(addr, length)

    def can_fit(self, node: str, length: int) -> bool:
        return self._list(node).can_fit(length)

    def free_bytes(self, node: str) -> int:
        return self._list(node).free_bytes

    def used_bytes(self, node: str) -> int:
        return self._list(node).used

    def allocated_bytes(self) -> int:
        """Total bytes currently allocated across all nodes."""
        return sum(fl.used for fl in self._lists.values())

    def check(self) -> None:
        for fl in self._lists.values():
            fl.check()
