"""Heartbeat-driven liveness monitoring (HDFS-style, Shvachko 2010).

Every storage node runs a small *datanode agent* process that sends a
fire-and-forget heartbeat RPC to the metadata node over the simulated
network — heartbeats share the wire, switch, and the metadata node's
RPC queue with everything else, so a congested control plane really
does detect failures later.  The metadata node sweeps the last-seen
table once per interval and declares a node dead after
``miss_threshold`` consecutive missed beats; the verdict feeds
:meth:`~repro.dfs.metadata.MetadataService.mark_dead` (placement stops
targeting the node), the management service's failure list, and any
registered ``on_death`` callbacks (the re-replicator subscribes here).

Everything is deterministic: beats are staggered by node index, the
sweep scans nodes in registration order, and no wall-clock or unseeded
randomness is involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .cluster import Testbed
from .control_rpc import MetadataNode, install_control_plane
from .nodes import StorageNode

__all__ = ["HEARTBEAT_RPC", "MonitorConfig", "HeartbeatMonitor", "install_monitor"]

#: RPC name datanode agents send to the metadata node
HEARTBEAT_RPC = "md_heartbeat"

#: CPU cost of processing one heartbeat on the metadata node
HEARTBEAT_HANDLE_NS = 120.0


@dataclass(frozen=True)
class MonitorConfig:
    """Liveness parameters (HDFS: 3 s beat, 10 min limit — scaled to
    simulator time where RPCs take microseconds, not milliseconds)."""

    #: heartbeat period per datanode
    interval_ns: float = 50_000.0
    #: consecutive missed beats before a node is declared dead
    miss_threshold: int = 3
    #: per-node start offset (node index × stagger) so 64 agents do not
    #: issue in lock-step
    stagger_ns: float = 1_000.0


class HeartbeatMonitor:
    """Datanode heartbeat agents + the metadata node's failure detector."""

    def __init__(
        self,
        testbed: Testbed,
        mds: Optional[MetadataNode] = None,
        config: Optional[MonitorConfig] = None,
    ):
        self.testbed = testbed
        self.config = config or MonitorConfig()
        self.mds = mds if mds is not None else install_control_plane(testbed)
        self.mds.register_rpc(HEARTBEAT_RPC, _heartbeat_rpc)
        self.mds.monitor = self  # type: ignore[attr-defined]
        #: last heartbeat arrival per node (nodes start trusted: a node
        #: only becomes suspect after it actually misses beats)
        self.last_seen: Dict[str, float] = {
            n: self.mds.sim.now for n in testbed.storage
        }
        #: declared-dead nodes -> detection time
        self.dead: Dict[str, float] = {}
        #: death declarations in detection order: (node, t_detect)
        self.deaths: List[tuple] = []
        self.beats_received = 0
        #: callbacks fired on each death declaration: f(node_name)
        self.on_death: List[Callable[[str], None]] = []
        # each agent runs on its node's own simulator and the sweep on
        # the metadata node's: under the partitioned engine a process
        # must live where the state it drives lives (all one simulator
        # in the serial case)
        for i, node in enumerate(testbed.storage.values()):
            node.sim.process(
                self._beat(node, i * self.config.stagger_ns),
                name=f"{node.name}.heartbeat",
            )
        self.mds.sim.process(self._sweep(), name=f"{self.mds.name}.livesweep")

    # ------------------------------------------------------------ agents
    def _beat(self, node: StorageNode, offset_ns: float):
        """Datanode agent: one fire-and-forget heartbeat per interval.

        A crashed node (``node.failed``) stops beating — exactly the
        signal the detector is built to notice."""
        if offset_ns > 0.0:
            yield node.sim.timeout(offset_ns)
        while not node.failed:
            node.nic.send_control(
                self.mds.name, "rpc", {"rpc": HEARTBEAT_RPC, "node": node.name}
            )
            yield node.sim.timeout(self.config.interval_ns)

    def note_beat(self, node: str) -> None:
        """Record a heartbeat arrival (called by the RPC handler)."""
        if node in self.dead:
            # no zombie resurrection: re-admission would need an
            # explicit operator action (out of scope here)
            return
        if node in self.last_seen:
            self.last_seen[node] = self.mds.sim.now
            self.beats_received += 1

    # ---------------------------------------------------------- detector
    def _sweep(self):
        cfg = self.config
        deadline = cfg.miss_threshold * cfg.interval_ns
        while True:
            yield self.mds.sim.timeout(cfg.interval_ns)
            now = self.mds.sim.now
            for name in self.testbed.storage:  # registration order
                if name in self.dead:
                    continue
                if now - self.last_seen[name] > deadline:
                    self.declare_dead(name)

    def declare_dead(self, node: str) -> None:
        """Record the verdict and fan it out to placement, management,
        and the death subscribers (re-replicator)."""
        if node in self.dead:
            return
        now = self.mds.sim.now
        self.dead[node] = now
        self.deaths.append((node, now))
        self.testbed.metadata.mark_dead(node)
        self.testbed.mgmt.report_failed(node)
        for cb in self.on_death:
            cb(node)

    def is_dead(self, node: str) -> bool:
        return node in self.dead


def _heartbeat_rpc(node: MetadataNode, headers, payload, src):
    yield from node.cpu.run(HEARTBEAT_HANDLE_NS)
    node.monitor.note_beat(headers["node"])  # type: ignore[attr-defined]


def install_monitor(
    testbed: Testbed,
    mds: Optional[MetadataNode] = None,
    config: Optional[MonitorConfig] = None,
) -> HeartbeatMonitor:
    """Attach heartbeat agents + failure detector to a testbed."""
    return HeartbeatMonitor(testbed, mds=mds, config=config)
