"""File layouts: where an object's bytes (and their redundancy) live.

The metadata service returns a :class:`FileLayout` to the client (step 2
of Fig. 1a); the client then talks to storage nodes directly.  A layout
pins the primary extent plus either the ordered replica extents (for
replication) or the data/parity extents (for erasure coding), so the
client can source-route the whole resiliency strategy in its write
request header (§V-A, §VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Sequence

__all__ = ["Extent", "ReplicationSpec", "EcSpec", "StripeSpec", "FileLayout", "StripedLayout"]


@dataclass(frozen=True)
class Extent:
    """A contiguous region on one storage node."""

    node: str
    addr: int
    length: int


@dataclass(frozen=True)
class ReplicationSpec:
    """k-way replication with a broadcast strategy (§V).

    ``k`` is the replication factor — the total number of nodes holding
    the data (the paper's per-file/per-pool parameter).
    """

    k: int
    strategy: Literal["ring", "pbt"] = "ring"

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("replication factor must be >= 1")
        if self.strategy not in ("ring", "pbt"):
            raise ValueError(f"unknown strategy {self.strategy!r}")


@dataclass(frozen=True)
class EcSpec:
    """RS(k, m) erasure coding (§VI)."""

    k: int
    m: int

    def __post_init__(self):
        if self.k < 1 or self.m < 1:
            raise ValueError("EC needs k >= 1 data and m >= 1 parity chunks")


@dataclass(frozen=True)
class StripeSpec:
    """Striping across storage nodes (Fig. 1a: a file layout "describes
    the regions (e.g., objects or blocks) composing a file").

    The file is cut into ``stripe_size``-byte stripes assigned
    round-robin to ``width`` storage nodes, so large files aggregate the
    ingest bandwidth of many nodes.
    """

    width: int
    stripe_size: int = 1 << 20

    def __post_init__(self):
        if self.width < 1:
            raise ValueError("stripe width must be >= 1")
        if self.stripe_size < 1:
            raise ValueError("stripe size must be >= 1 byte")


@dataclass(frozen=True)
class StripedLayout:
    """A file composed of striped regions, each its own object layout.

    ``regions[i]`` stores stripes ``i, i+width, i+2*width, ...``; each
    region is a plain (optionally replicated) :class:`FileLayout`.
    """

    object_id: int
    size: int
    stripe: StripeSpec
    regions: tuple["FileLayout", ...]

    def __post_init__(self):
        if len(self.regions) != self.stripe.width:
            raise ValueError("need one region per stripe column")

    @property
    def resiliency(self) -> str:
        return self.regions[0].resiliency

    def stripe_ranges(self) -> list[tuple[int, int, int]]:
        """(file_offset, length, region_index) for every stripe."""
        out = []
        off = 0
        i = 0
        while off < self.size:
            take = min(self.stripe.stripe_size, self.size - off)
            out.append((off, take, i % self.stripe.width))
            off += take
            i += 1
        return out

    def region_offset(self, stripe_index: int) -> int:
        """Byte offset of stripe ``stripe_index`` inside its region."""
        return (stripe_index // self.stripe.width) * self.stripe.stripe_size


@dataclass(frozen=True)
class FileLayout:
    """Placement of one object."""

    object_id: int
    size: int
    #: replication: primary + ordered secondaries.  EC: data extents.
    extents: tuple[Extent, ...]
    resiliency: Literal["none", "replication", "ec"] = "none"
    replication: Optional[ReplicationSpec] = None
    ec: Optional[EcSpec] = None
    parity_extents: tuple[Extent, ...] = ()

    def __post_init__(self):
        if self.resiliency == "replication":
            if self.replication is None:
                raise ValueError("missing ReplicationSpec")
            if len(self.extents) != self.replication.k:
                raise ValueError(
                    f"replication k={self.replication.k} needs {self.replication.k} "
                    f"extents, got {len(self.extents)}"
                )
        elif self.resiliency == "ec":
            if self.ec is None:
                raise ValueError("missing EcSpec")
            if len(self.extents) != self.ec.k:
                raise ValueError(f"EC k={self.ec.k} needs {self.ec.k} data extents")
            if len(self.parity_extents) != self.ec.m:
                raise ValueError(f"EC m={self.ec.m} needs {self.ec.m} parity extents")
        elif self.resiliency == "none":
            if len(self.extents) != 1:
                raise ValueError("unreplicated layout needs exactly one extent")
        else:
            raise ValueError(f"unknown resiliency {self.resiliency!r}")

    @property
    def primary(self) -> Extent:
        return self.extents[0]

    @property
    def all_nodes(self) -> list[str]:
        return [e.node for e in self.extents] + [e.node for e in self.parity_extents]

    def chunk_length(self) -> int:
        """Per-extent chunk length (EC: data chunk size; all equal)."""
        return self.extents[0].length
