"""Management service: client authentication and monitoring (Fig. 1a).

Clients first authenticate here (out of the measured data path); the
service owns the :class:`~repro.dfs.capability.CapabilityAuthority`
shared with the metadata service and with the storage-node NICs, and
tracks basic health/monitoring state used by the failure-recovery
example (§VII: monitoring services detect unreachable nodes and start
recovery).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from .capability import CapabilityAuthority

__all__ = ["ManagementService", "AuthError"]


class AuthError(RuntimeError):
    pass


class ManagementService:
    """Authentication + monitoring front end."""

    def __init__(self, authority: Optional[CapabilityAuthority] = None):
        self.authority = authority or CapabilityAuthority()
        self._client_ids = itertools.count(1)
        self._sessions: Dict[int, str] = {}
        self._node_health: Dict[str, bool] = {}

    # ------------------------------------------------------------- auth
    def authenticate(self, principal: str, secret: str = "") -> int:
        """Register a client; returns its client id.

        A real deployment would check credentials; the simulation only
        needs a stable identity to bind capabilities to.
        """
        if principal.startswith("mallory"):
            # convenience hook used by the security example/tests
            raise AuthError(f"unknown principal {principal!r}")
        cid = next(self._client_ids)
        self._sessions[cid] = principal
        return cid

    def is_authenticated(self, client_id: int) -> bool:
        return client_id in self._sessions

    def principal(self, client_id: int) -> str:
        return self._sessions[client_id]

    # -------------------------------------------------------- monitoring
    def report_healthy(self, node: str) -> None:
        self._node_health[node] = True

    def report_failed(self, node: str) -> None:
        """Client-signalled failure (§VII: a client that times out on an
        ack reports the storage node to start recovery)."""
        self._node_health[node] = False

    def failed_nodes(self) -> list[str]:
        return [n for n, ok in self._node_health.items() if not ok]

    def is_healthy(self, node: str) -> bool:
        return self._node_health.get(node, True)
