"""Simulated hosts: storage nodes and client nodes.

A :class:`Host` bundles the hardware models (NIC, PCIe, CPU cores,
memory target) and registers itself on the network.  A
:class:`StorageNode` adds the DFS server personality: an RPC command
queue drained by CPU cores (the Fig. 1b architecture) and, optionally, a
PsPIN accelerator with installed DFS execution contexts (Fig. 1d).
Client nodes are plain hosts — their "DFS endpoint" logic lives in
:class:`~repro.dfs.client.DfsClient`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..core.handlers import DfsPolicy, build_dfs_context
from ..core.state import DfsState
from ..hostsim import Cpu, MemoryTarget, Pcie
from ..params import SimParams
from ..pspin.accelerator import PsPinAccelerator
from ..pspin.memory import NicMemory
from ..rdma.nic import RdmaNic
from ..simnet.engine import Event, Simulator
from ..simnet.network import Network
from ..simnet.resources import Store
from .capability import CapabilityAuthority

__all__ = ["Host", "StorageNode", "ClientNode", "RpcHandler"]

#: RPC handler signature: generator run in its own process.
RpcHandler = Callable[["StorageNode", dict, np.ndarray, str], object]


class Host:
    """A network endpoint with NIC, PCIe, CPU, and a storage target.

    ``storage_backend`` selects the medium (§III): ``"nvmm"`` — a flat
    byte-addressable memory target (in-memory/NVMM DFS); ``"nvme"`` — an
    NVMe JBOF model where durability waits for flash program latency.
    """

    def __init__(self, sim: Simulator, net: Network, name: str, params: SimParams,
                 storage_backend: str = "nvmm"):
        self.sim = sim
        self.name = name
        self.params = params
        if storage_backend == "nvme":
            from ..hostsim.nvme import NvmeTarget

            self.memory = NvmeTarget(sim, params.storage_capacity_bytes, name=f"{name}.nvme")
        elif storage_backend == "nvmm":
            self.memory = MemoryTarget(params.storage_capacity_bytes)
        else:
            raise ValueError(f"unknown storage backend {storage_backend!r}")
        self.storage_backend = storage_backend
        self.pcie = Pcie(sim, params.host, name=f"{name}.pcie")
        self.cpu = Cpu(sim, params.host, name=f"{name}.cpu")
        self.nic = RdmaNic(sim, params, host=self, name=name)
        port = net.register(self.nic)
        self.nic.attach_port(port)
        self.failed = False

    # NIC delegates unknown-op RPC delivery here; plain hosts ignore it.
    def on_rpc(self, headers: dict, payload: np.ndarray, src: str) -> None:
        raise NotImplementedError(f"{self.name} does not serve RPCs")

    def fail(self) -> None:
        """Crash the node: it stops reacting to traffic (§VII)."""
        self.failed = True
        self.nic.receive = lambda pkt: None  # type: ignore[method-assign]
        # coalesced packet trains are delivered through a separate entry
        # point; without this stub a train would bypass the crash and the
        # "dead" node would keep committing writes and sending acks
        self.nic.receive_train = lambda st: None  # type: ignore[method-assign]

    def host_exec(self, duration_ns: float) -> Event:
        """Run ``duration_ns`` of work on a CPU core; returns a Process
        event (used by the accelerator's CPU-fallback path)."""
        return self.sim.process(self.cpu.run(duration_ns), name=f"{self.name}.hostexec")


class StorageNode(Host):
    """A storage server (Fig. 1b-d depending on configuration)."""

    def __init__(self, sim: Simulator, net: Network, name: str, params: SimParams,
                 storage_backend: str = "nvmm"):
        super().__init__(sim, net, name, params, storage_backend=storage_backend)
        self.rpc_queue: Store = Store(sim, name=f"{name}.rpcq")
        self.rpc_handlers: Dict[str, RpcHandler] = {}
        self.accelerator: Optional[PsPinAccelerator] = None
        self.dfs_state: Optional[DfsState] = None
        self.nicmem: Optional[NicMemory] = None
        self.rpcs_served = 0
        sim.process(self._rpc_server(), name=f"{name}.rpcsrv")

    # ------------------------------------------------------------- PsPIN
    def install_pspin(
        self,
        policy: DfsPolicy,
        authority: Optional[CapabilityAuthority],
        n_accumulators: int = 0,
        accumulator_bytes: int = 2048,
        match_ops: tuple[str, ...] = ("write",),
        hpu_quota: Optional[int] = None,
    ) -> PsPinAccelerator:
        """Attach a PsPIN accelerator and install a DFS execution
        context built around ``policy`` (§III-C)."""
        accel = PsPinAccelerator(
            self.sim,
            self.params.pspin,
            node_name=self.name,
            send_fn=self.nic.send_raw,
            dma_fn=self._accel_dma,
            host_exec_fn=self.host_exec,
            host_write_fn=self.memory.write,
            host_read_fn=self.memory.read,
        )
        self.nicmem = NicMemory(self.sim, self.params.pspin, name=f"{self.name}.nicmem")
        self.dfs_state = DfsState(
            self.nicmem,
            self.params.pspin,
            authority=authority,
            n_accumulators=n_accumulators,
            accumulator_bytes=accumulator_bytes,
        )
        ctx = build_dfs_context(
            policy.name, policy, self.dfs_state, match_ops=match_ops,
            hpu_quota=hpu_quota,
        )
        accel.install(ctx)
        # NVMM DMA completes with a timeless memory write, so the train
        # driver may batch handler commits; NVMe completions run a flash
        # program that reads the clock and must be issued live.
        accel.dma_lazy_ok = self.storage_backend != "nvme"
        self.accelerator = accel
        self.nic.attach_accelerator(accel)
        return accel

    def add_pspin_context(
        self,
        policy: DfsPolicy,
        match_ops: tuple[str, ...],
        hpu_quota: Optional[int] = None,
    ):
        """Install an additional execution context on an already-attached
        accelerator (contexts match disjoint packet classes, §III-C;
        ``hpu_quota`` caps the context's concurrent HPUs, §VII QoS)."""
        if self.accelerator is None or self.dfs_state is None:
            raise RuntimeError(f"{self.name}: no accelerator installed")
        ctx = build_dfs_context(
            policy.name, policy, self.dfs_state, match_ops=match_ops,
            hpu_quota=hpu_quota,
        )
        self.accelerator.install(ctx)
        return ctx

    def _accel_dma(self, addr: Optional[int], payload) -> Event:
        """DMA bridge for the accelerator: the returned event fires at
        *durability* — after PCIe for NVMM, after the flash program for
        NVMe (handlers "directly issue NVMe writes via the system
        interconnect", §III)."""
        acc = self.accelerator
        post_t = acc._commit_t if acc is not None else None
        if addr is None:
            return self.pcie.dma(int(payload), post_t=post_t)
        data = payload
        if self.storage_backend == "nvme":
            done = self.sim.event(name=f"{self.name}.nvme-flush")

            def submit():
                cmd = self.memory.submit_write(addr, data)
                cmd.add_callback(
                    lambda ev: done.fail(ev.exception)
                    if ev.exception is not None
                    else done.succeed(None)
                )

            self.pcie.dma(data.nbytes, on_complete=submit, post_t=post_t)
            return done
        return self.pcie.dma(
            data.nbytes,
            on_complete=lambda: self.memory.write(addr, data),
            post_t=post_t,
        )

    # --------------------------------------------------------------- RPC
    def register_rpc(self, name: str, handler: RpcHandler) -> None:
        self.rpc_handlers[name] = handler

    def on_rpc(self, headers: dict, payload: np.ndarray, src: str) -> None:
        self.rpc_queue.put((headers, payload, src))

    def _rpc_server(self):
        """Drain the command queue.  The *polling thread* pays the
        pickup/dispatch cost serially per command (this is what makes
        very small pipelining chunks expensive); the handler body then
        runs in its own process so other cores can serve concurrently
        (cores gate inside the handlers via ``cpu.run``)."""
        while True:
            headers, payload, src = yield self.rpc_queue.get()
            yield from self.cpu.run(self.params.host.rpc_dispatch_ns,
                                    trace=headers.get("trace"))
            name = headers.get("rpc")
            handler = self.rpc_handlers.get(name)
            if handler is None:
                self.respond(src, headers["greq_id"], None, error=True)
                continue
            self.rpcs_served += 1
            self.sim.process(
                self._run_rpc(handler, headers, payload, src),
                name=f"{self.name}.rpc.{name}",
            )

    def _run_rpc(self, handler, headers, payload, src):
        yield from handler(self, headers, payload, src)

    def respond(self, dst: str, greq_id: int, result, error: bool = False) -> Event:
        return self.nic.send_control(
            dst, "rpc_resp", {"ack_for": greq_id, "result": result, "error": error}
        )

    def ack(self, dst: str, greq_id: int, dedup=None) -> Event:
        headers = {"ack_for": greq_id, "node": self.name}
        if dedup is not None:
            headers["dedup"] = dedup
        return self.nic.send_control(dst, "ack", headers)


class ClientNode(Host):
    """A DFS client host (library endpoint, Fig. 1a)."""

    def on_rpc(self, headers: dict, payload: np.ndarray, src: str) -> None:
        # Clients do not serve RPCs; silently drop (e.g. late traffic).
        pass
