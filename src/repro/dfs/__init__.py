"""DFS substrate: control-plane services, layouts, nodes, client endpoint."""

from .capability import (
    CAPABILITY_WIRE_BYTES,
    Capability,
    CapabilityAuthority,
    Rights,
)
from .client import DfsClient, PROTOCOLS
from .cluster import Testbed, build_testbed
from .layout import EcSpec, Extent, FileLayout, ReplicationSpec
from .management import AuthError, ManagementService
from .metadata import MetadataError, MetadataService
from .nodes import ClientNode, Host, StorageNode

__all__ = [
    "AuthError",
    "CAPABILITY_WIRE_BYTES",
    "Capability",
    "CapabilityAuthority",
    "ClientNode",
    "DfsClient",
    "EcSpec",
    "Extent",
    "FileLayout",
    "Host",
    "ManagementService",
    "MetadataError",
    "MetadataService",
    "PROTOCOLS",
    "ReplicationSpec",
    "StorageNode",
    "Testbed",
    "build_testbed",
]
