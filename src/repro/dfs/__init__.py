"""DFS substrate: control-plane services, layouts, nodes, client endpoint."""

from .allocator import AllocError, ExtentAllocator, FreeList
from .capability import (
    CAPABILITY_WIRE_BYTES,
    Capability,
    CapabilityAuthority,
    Rights,
)
from .client import DfsClient, PROTOCOLS
from .cluster import Testbed, build_testbed
from .layout import EcSpec, Extent, FileLayout, ReplicationSpec
from .management import AuthError, ManagementService
from .metadata import MetadataError, MetadataService
from .monitor import HeartbeatMonitor, MonitorConfig, install_monitor
from .nodes import ClientNode, Host, StorageNode
from .placement import (
    CapacityAwarePolicy,
    FailureDomainPolicy,
    NodeView,
    PlacementPolicy,
    RoundRobinPolicy,
    make_policy,
)
from .replicator import RepairRecord, ReplicatorConfig, ReReplicator

__all__ = [
    "AllocError",
    "AuthError",
    "CAPABILITY_WIRE_BYTES",
    "Capability",
    "CapabilityAuthority",
    "CapacityAwarePolicy",
    "ClientNode",
    "DfsClient",
    "EcSpec",
    "Extent",
    "ExtentAllocator",
    "FailureDomainPolicy",
    "FileLayout",
    "FreeList",
    "HeartbeatMonitor",
    "Host",
    "ManagementService",
    "MetadataError",
    "MetadataService",
    "MonitorConfig",
    "NodeView",
    "PROTOCOLS",
    "PlacementPolicy",
    "RepairRecord",
    "ReplicationSpec",
    "ReplicatorConfig",
    "ReReplicator",
    "RoundRobinPolicy",
    "StorageNode",
    "Testbed",
    "build_testbed",
    "install_monitor",
    "make_policy",
]
