"""The DFS client endpoint (Fig. 1a): the library a user links against.

Wraps a client host with the full workflow: authenticate with the
management service, create/lookup objects at the metadata service,
obtain capability tickets, and issue data-plane operations through a
selected write protocol.  ``write()`` returns a simulation event;
``write_sync()`` additionally drives the simulator until completion —
convenient for examples and tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.policies.erasure import rs_for
from ..ec.reed_solomon import DecodeError
from ..protocols import (
    WriteContext,
    WriteOutcome,
    cpu_replicated_write,
    hyperloop_write,
    inec_write,
    raw_write,
    rdma_flat_write,
    rpc_rdma_write,
    rpc_write,
    spin_write,
)
from ..simnet.engine import Event
from .capability import Capability, Rights
from .cluster import Testbed
from .layout import EcSpec, FileLayout, ReplicationSpec

__all__ = ["DfsClient", "PROTOCOLS"]

#: protocol name -> requires-testbed flag (driver signature differences)
PROTOCOLS = (
    "spin",
    "raw",
    "rpc",
    "rpc+rdma",
    "cpu",
    "rdma-flat",
    "rdma-hyperloop",
    "inec",
)


class DfsClient:
    """A user-facing DFS endpoint bound to one client host."""

    def __init__(self, testbed: Testbed, client_index: int = 0, principal: str = "user"):
        self.testbed = testbed
        self.node = testbed.clients[client_index]
        self.client_id = testbed.mgmt.authenticate(principal)
        self._tickets: dict[str, Capability] = {}

    # ------------------------------------------------------------ control
    def create(
        self,
        path: str,
        size: int,
        replication: Optional[ReplicationSpec] = None,
        ec: Optional[EcSpec] = None,
    ) -> FileLayout:
        layout = self.testbed.metadata.create(path, size, replication=replication, ec=ec)
        self._tickets[path] = self.testbed.metadata.issue_ticket(
            self.client_id, path, Rights.RW
        )
        return layout

    def open(self, path: str) -> FileLayout:
        layout = self.testbed.metadata.lookup(path)
        if path not in self._tickets:
            self._tickets[path] = self.testbed.metadata.issue_ticket(
                self.client_id, path, Rights.RW
            )
        return layout

    def ticket(self, path: str) -> Capability:
        return self._tickets[path]

    def forge_ticket(self, path: str) -> Capability:
        """A tampered capability (for the security tests/examples): same
        descriptor, corrupted signature."""
        cap = self._tickets[path]
        bad_sig = bytes(b ^ 0xFF for b in cap.signature)
        return Capability(
            cap.client_id,
            cap.object_id,
            cap.addr,
            cap.length,
            cap.rights,
            cap.expiry_ns,
            bad_sig,
        )

    # -------------------------------------------------------------- data
    def _ctx(self, path: str, capability: Optional[Capability]) -> WriteContext:
        cap = capability if capability is not None else self._tickets.get(path)
        return WriteContext(client=self.node, client_id=self.client_id, capability=cap)

    def write(
        self,
        path: str,
        data,
        protocol: str = "spin",
        capability: Optional[Capability] = None,
        **kw,
    ) -> Event:
        """Issue a write; returns an event whose value is WriteOutcome."""
        layout = self.testbed.metadata.lookup(path)
        ctx = self._ctx(path, capability)
        if protocol == "spin":
            return spin_write(ctx, layout, data, **kw)
        if protocol == "raw":
            return raw_write(ctx, layout, data)
        if protocol == "rpc":
            return rpc_write(ctx, layout, data, self.testbed)
        if protocol == "rpc+rdma":
            return rpc_rdma_write(ctx, layout, data, self.testbed)
        if protocol == "cpu":
            return cpu_replicated_write(ctx, layout, data, self.testbed, **kw)
        if protocol == "rdma-flat":
            return rdma_flat_write(ctx, layout, data)
        if protocol == "rdma-hyperloop":
            return hyperloop_write(ctx, layout, data, **kw)
        if protocol == "inec":
            return inec_write(ctx, layout, data)
        raise ValueError(f"unknown protocol {protocol!r}; pick one of {PROTOCOLS}")

    def write_sync(self, path: str, data, protocol: str = "spin", **kw) -> WriteOutcome:
        ev = self.write(path, data, protocol=protocol, **kw)
        return self.testbed.run_until(ev)

    #: NACK reasons that mean "try again later" rather than "rejected":
    #: NIC request memory exhausted (§III-B2) or accelerator overloaded
    #: (§III-C).  Auth/integrity rejections are never retried.
    RETRYABLE_NACKS = ("nic_mem", "overload", "log_full")

    def write_with_retry(
        self,
        path: str,
        data,
        protocol: str = "spin",
        max_retries: int = 8,
        backoff_ns: float = 2_000.0,
        **kw,
    ) -> WriteOutcome:
        """Write, retrying transient denials with exponential backoff.

        The paper's §III-B2 contract: "If a client request cannot be
        served because of lack of space, the request is denied, and the
        client will retry later."
        """
        attempt = 0
        while True:
            out = self.write_sync(path, data, protocol=protocol, **kw)
            out.details["attempts"] = attempt + 1
            if out.ok:
                return out
            reasons = {n.get("reason") for n in out.nacks}
            if not reasons & set(self.RETRYABLE_NACKS) or attempt >= max_retries:
                return out
            self.testbed.run(until=self.testbed.sim.now + backoff_ns * (2**attempt))
            attempt += 1

    # ------------------------------------------------------------- reads
    def read(self, path: str, addr: int = 0, length: Optional[int] = None,
             protocol: str = "spin", replica: int = 0) -> Event:
        """Timed data-plane read.  ``spin``: authenticated on-NIC read
        (RRH validated by the header handler); ``raw``: plain RDMA read.
        ``replica`` picks which copy serves the read — replicas are
        byte-identical, so reads fail over to secondaries when the
        primary is down.  The event's value is an OpResult with
        ``.data``."""
        from ..protocols.spin_write import spin_read

        layout = self.testbed.metadata.lookup(path)
        length = layout.size if length is None else length
        if protocol == "spin":
            return spin_read(self._ctx(path, None), layout, addr, length,
                             replica=replica)
        if protocol == "raw":
            ext = layout.extents[replica]
            return self.node.nic.post_read(ext.node, ext.addr + addr, length)
        raise ValueError(f"read supports 'spin' or 'raw', not {protocol!r}")

    def read_sync(self, path: str, addr: int = 0, length: Optional[int] = None,
                  protocol: str = "spin", replica: int = 0):
        return self.testbed.run_until(
            self.read(path, addr, length, protocol, replica=replica)
        )

    def read_back(self, path: str) -> np.ndarray:
        """Functional read of the object's current on-target bytes
        (control-plane convenience; no data-plane timing)."""
        layout = self.testbed.metadata.lookup(path)
        if layout.resiliency == "ec":
            chunks = [
                self.testbed.node(e.node).memory.read(e.addr, e.length)
                for e in layout.extents
            ]
            return np.concatenate(chunks)[: layout.size]
        ext = layout.primary
        return self.testbed.node(ext.node).memory.read(ext.addr, ext.length)[
            : layout.size
        ]

    def recover(self, path: str, failed_nodes: set[str]) -> np.ndarray:
        """Erasure-coded recovery: decode the object from surviving
        chunks (§VI: offline decode by monitoring/recovery services)."""
        layout = self.testbed.metadata.lookup(path)
        if layout.resiliency != "ec":
            raise DecodeError(f"{path!r} is not erasure coded")
        rs = rs_for(layout.ec.k, layout.ec.m)
        available = {}
        for idx, ext in enumerate(list(layout.extents) + list(layout.parity_extents)):
            if ext.node in failed_nodes:
                continue
            available[idx] = self.testbed.node(ext.node).memory.read(ext.addr, ext.length)
        data_chunks = rs.decode(available)
        return rs.join(data_chunks, length=layout.size)
