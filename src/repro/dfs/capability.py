"""Capability-based client authentication (§IV).

Threat model (the one the paper assumes): clients are *not* trusted, the
network *is*.  The metadata service hands the client a ticket containing
a **capability descriptor** — which operations are allowed on which
object range — signed with a key shared among DFS services (the
storage-node handlers hold the key; clients do not).  Storage-side
validation recomputes the HMAC and checks the requested operation
against the descriptor [32].

The signature uses HMAC-SHA256 truncated to 16 bytes; together with the
descriptor fields a capability serializes to a fixed 45-byte blob that
rides in the DFS header of every request (§III-A).
"""

from __future__ import annotations

import hmac
import hashlib
import secrets
import struct
from dataclasses import dataclass
from enum import IntFlag

__all__ = ["Rights", "Capability", "CapabilityAuthority", "CAPABILITY_WIRE_BYTES"]


class Rights(IntFlag):
    """Operation bits a capability can grant."""

    NONE = 0
    READ = 1
    WRITE = 2
    RW = READ | WRITE


#: Packed descriptor: client_id(4) object_id(8) addr(8) length(8)
#: rights(1) expiry(8) = 37 bytes, + 16-byte truncated HMAC = 53.
_DESC_FMT = "<IQQQBQ"
_SIG_BYTES = 16
CAPABILITY_WIRE_BYTES = struct.calcsize(_DESC_FMT) + _SIG_BYTES


@dataclass(frozen=True)
class Capability:
    """A signed grant of ``rights`` on ``[addr, addr+length)`` of an object."""

    client_id: int
    object_id: int
    addr: int
    length: int
    rights: Rights
    expiry_ns: int
    signature: bytes

    # ------------------------------------------------------------ wire
    def descriptor_bytes(self) -> bytes:
        return struct.pack(
            _DESC_FMT,
            self.client_id,
            self.object_id,
            self.addr,
            self.length,
            int(self.rights),
            self.expiry_ns,
        )

    def to_wire(self) -> bytes:
        return self.descriptor_bytes() + self.signature

    @classmethod
    def from_wire(cls, blob: bytes) -> "Capability":
        if len(blob) != CAPABILITY_WIRE_BYTES:
            raise ValueError(
                f"capability blob must be {CAPABILITY_WIRE_BYTES} B, got {len(blob)}"
            )
        desc, sig = blob[:-_SIG_BYTES], blob[-_SIG_BYTES:]
        client_id, object_id, addr, length, rights, expiry = struct.unpack(
            _DESC_FMT, desc
        )
        return cls(client_id, object_id, addr, length, Rights(rights), expiry, sig)

    # ------------------------------------------------------------ checks
    def covers(self, op_rights: Rights, addr: int, length: int) -> bool:
        """Does this capability allow ``op_rights`` on the given range?"""
        return (
            (self.rights & op_rights) == op_rights
            and addr >= self.addr
            and addr + length <= self.addr + self.length
        )


class CapabilityAuthority:
    """Holds the service-shared signing key; issues and verifies capabilities.

    One instance is shared by the management/metadata services (issuers)
    and the storage-node handlers (verifiers) — never by clients.
    """

    def __init__(self, key: bytes | None = None):
        self.key = key if key is not None else secrets.token_bytes(32)
        self.issued = 0
        self.verified_ok = 0
        self.verified_fail = 0

    def _sign(self, descriptor: bytes) -> bytes:
        return hmac.new(self.key, descriptor, hashlib.sha256).digest()[:_SIG_BYTES]

    def issue(
        self,
        client_id: int,
        object_id: int,
        addr: int,
        length: int,
        rights: Rights,
        expiry_ns: int = 2**63 - 1,
    ) -> Capability:
        cap = Capability(client_id, object_id, addr, length, rights, expiry_ns, b"")
        sig = self._sign(cap.descriptor_bytes())
        self.issued += 1
        return Capability(client_id, object_id, addr, length, rights, expiry_ns, sig)

    def verify(
        self,
        cap: Capability,
        op_rights: Rights,
        addr: int,
        length: int,
        now_ns: float = 0.0,
    ) -> bool:
        """The storage-side check the sPIN header handler runs
        (DFS_request_init of Listing 1)."""
        expected = self._sign(cap.descriptor_bytes())
        ok = (
            hmac.compare_digest(expected, cap.signature)
            and now_ns <= cap.expiry_ns
            and cap.covers(op_rights, addr, length)
        )
        if ok:
            self.verified_ok += 1
        else:
            self.verified_fail += 1
        return ok

    def rotate_key(self, new_key: bytes) -> None:
        """Key rotation: the DFS software updates the key in NIC memory
        (§III-C: "e.g., to update encryption keys")."""
        self.key = new_key
