"""Testbed builder: one simulator, one network, services, nodes.

``build_testbed`` is the entry point every experiment and example uses:
it wires the star network (§III-D parameters), the control-plane
services, ``n_storage`` storage nodes and ``n_clients`` client hosts.
Storage-node *personalities* (PsPIN contexts, RPC handlers, HyperLoop
WQE hooks, INEC accelerators) are installed afterwards by the protocol
modules in :mod:`repro.protocols`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..faults import install_faults
from ..params import SimParams
from ..simnet.engine import Event, Simulator
from ..simnet.network import Network
from ..simnet.packet import reset_id_state
from .capability import CapabilityAuthority
from .management import ManagementService
from .metadata import MetadataService
from .nodes import ClientNode, StorageNode

__all__ = ["Testbed", "build_testbed"]


class _LeafPlacementShim:
    """Adapter giving a LeafSpineNetwork the Network.register interface:
    clients land on leaf 0, storage-role hosts (storage nodes and the
    metadata node, which reuses the StorageNode machinery) on leaf 1.

    Placement is derived from the endpoint's host *role*, not its name —
    keying on the ``"sn"`` prefix silently dropped any differently-named
    storage node onto the client leaf."""

    def __init__(self, fabric):
        self.fabric = fabric
        self.cfg = fabric.cfg

    def register(self, endpoint):
        host = getattr(endpoint, "host", None)
        leaf = 1 if isinstance(host, StorageNode) else 0
        return self.fabric.register(endpoint, leaf=leaf)

    @property
    def switch(self):
        return self.fabric.switch


def _partition_assignment(n_storage: int, n_clients: int, k: int) -> Dict[str, int]:
    """Role-aware k-way cut: clients (and late control-plane nodes, which
    default to rank 0) share the driver partition so driver-side Python —
    request issue, measurement, metadata — sees live state even in
    process mode; storage nodes spread contiguously over ranks 1..k-1."""
    assignment = {f"client{i}": 0 for i in range(n_clients)}
    spread = k - 1
    for i in range(n_storage):
        assignment[f"sn{i}"] = 1 + (i * spread) // n_storage if spread else 0
    return assignment


class Testbed:
    """A wired cluster ready for protocol configuration."""

    def __init__(self, params: SimParams, n_storage: int, n_clients: int,
                 storage_backend: str = "nvmm", topology: str = "star",
                 uplink_gbps: Optional[float] = None, telemetry: bool = False,
                 placement: str = "roundrobin",
                 failure_domains: Optional[Dict[str, int]] = None,
                 partitions: int = 1, parallel_mode: str = "inline",
                 sanitize: bool = False):
        # Restart packet/message/greq id allocation: the counters and the
        # derived-id memo are module-level, so without this a long sweep
        # (or a pool worker reusing its interpreter) leaks entries across
        # testbeds and produces history-dependent ids.
        reset_id_state()
        self.params = params
        self.partitions = int(partitions)
        if self.partitions > 1:
            if topology != "star":
                raise ValueError(
                    "partitioned runs support only the star topology "
                    "(the cut lives inside the single switch core)"
                )
            from ..simnet.parallel import ParallelSimulator, PartitionedNetwork
            from ..simnet.topology import star_topology

            names = [f"sn{i}" for i in range(n_storage)]
            names += [f"client{i}" for i in range(n_clients)]
            topo = star_topology(names, params.net)
            spec = topo.partition(
                self.partitions,
                _partition_assignment(n_storage, n_clients, self.partitions),
            )
            self.sim = ParallelSimulator(
                spec, mode=parallel_mode, sanitize=sanitize
            )
        else:
            self.sim = Simulator(sanitize=sanitize)
        # span/metric collection is off by default (zero overhead); flip
        # ``sim.telemetry.enabled`` at any time to start recording
        self.sim.telemetry.enabled = telemetry
        self.telemetry = self.sim.telemetry
        self.sim.coalescing = params.coalescing
        if self.partitions > 1:
            for s in self.sim.sims:
                install_faults(s, params.faults)
            # the driver partition's injector doubles as the testbed-level
            # handle; per-partition injectors share the (seed, link name)
            # RNG scheme, so verdict streams match the serial run's
            self.faults = self.sim.faults = self.sim.driver_sim.faults
            self.net = PartitionedNetwork(self.sim, params.net)
        elif topology == "star":
            self.faults = install_faults(self.sim, params.faults)
            self.net = Network(self.sim, params.net)
        elif topology == "leafspine":
            self.faults = install_faults(self.sim, params.faults)
            # clients on leaf 0, storage on leaf 1: every data-plane
            # byte crosses the (possibly oversubscribed) spine uplinks
            from ..simnet.topology import LeafSpineNetwork

            fabric = LeafSpineNetwork(
                self.sim, params.net, n_leaves=2, n_spines=1, uplink_gbps=uplink_gbps
            )
            self.net = _LeafPlacementShim(fabric)
        else:
            raise ValueError(f"unknown topology {topology!r}")
        self.authority = CapabilityAuthority(key=b"repro-shared-service-key")
        self.mgmt = ManagementService(self.authority)
        self.storage: Dict[str, StorageNode] = {}
        for i in range(n_storage):
            name = f"sn{i}"
            self.storage[name] = StorageNode(
                self._sim_for(name), self.net, name, params,
                storage_backend=storage_backend
            )
        self.metadata = MetadataService(
            storage_nodes=list(self.storage),
            node_capacity=params.storage_capacity_bytes,
            authority=self.authority,
            placement=placement,
            failure_domains=failure_domains,
        )
        self.clients: List[ClientNode] = [
            ClientNode(self._sim_for(f"client{i}"), self.net, f"client{i}", params)
            for i in range(n_clients)
        ]

    def _sim_for(self, name: str) -> Simulator:
        """The simulator a host named ``name`` must be built on: its
        partition's kernel when partitioned, the single kernel otherwise."""
        return self.sim.sim_for(name) if self.partitions > 1 else self.sim

    # ------------------------------------------------------------ helpers
    @property
    def storage_nodes(self) -> List[StorageNode]:
        return list(self.storage.values())

    def node(self, name: str) -> StorageNode:
        return self.storage[name]

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def run_until(self, event: Event, timeout_ns: Optional[float] = None):
        """Drive the simulation until ``event`` fires; return its value."""
        return self.sim.run_until_event(event, limit=timeout_ns)

    def run_all(self, events) -> list:
        """Drive the simulation until every event fires; return values."""
        return [self.sim.run_until_event(ev) for ev in events]

    def finish(self) -> None:
        """Join process-mode partition workers (no-op otherwise)."""
        fin = getattr(self.sim, "finish", None)
        if fin is not None:
            fin()

    # ------------------------------------------------------- sanitizer
    @property
    def sanitizer(self):
        """The (driver) kernel's sanitizer; None unless sanitize=True."""
        return getattr(self.sim, "sanitizer", None)

    def sanitize_report(self, quiesce: bool = True):
        """Run the quiesce sweep on every partition kernel and return the
        merged :class:`repro.simsan.Report` (requires sanitize=True)."""
        from ..simsan import report_for

        if self.sanitizer is None:
            raise ValueError("testbed was not built with sanitize=True")
        sims = getattr(self.sim, "sims", None) or [self.sim]
        for s in sims:
            if s.sanitizer is None:
                continue
            if quiesce:
                s.sanitizer.check_quiesce()
            else:
                # never quiesced: leak sweeps would misfire on work still
                # legitimately in flight, but orphan budgets still apply
                s.sanitizer.check_orphans()
        return report_for(self.sim)


def build_testbed(
    n_storage: int = 8,
    n_clients: int = 1,
    params: Optional[SimParams] = None,
    storage_backend: str = "nvmm",
    topology: str = "star",
    uplink_gbps: Optional[float] = None,
    telemetry: bool = False,
    placement: str = "roundrobin",
    failure_domains: Optional[Dict[str, int]] = None,
    partitions: int = 1,
    parallel_mode: str = "inline",
    sanitize: bool = False,
) -> Testbed:
    """Construct a testbed.  Defaults to the paper's flat network
    (§III-D); ``topology="leafspine"`` puts clients and storage on
    separate leaves with configurable uplink bandwidth.
    ``telemetry=True`` turns on span/metric collection (see
    :mod:`repro.telemetry`).  ``placement`` selects the metadata
    service's block-placement policy (``roundrobin`` / ``capacity`` /
    ``domain``; see :mod:`repro.dfs.placement`), and
    ``failure_domains`` assigns storage nodes to racks for the
    domain-aware policy.  ``partitions > 1`` shards the simulation into
    that many conservative-window partitions (clients with the driver,
    storage spread over the rest; see :mod:`repro.simnet.parallel`), and
    ``parallel_mode`` picks ``"inline"`` or ``"process"`` execution.
    ``sanitize=True`` attaches the runtime sanitizer to every kernel
    (see :mod:`repro.simsan`; the schedule is unchanged)."""
    return Testbed(
        params or SimParams(),
        n_storage=n_storage,
        n_clients=n_clients,
        storage_backend=storage_backend,
        topology=topology,
        uplink_gbps=uplink_gbps,
        telemetry=telemetry,
        placement=placement,
        failure_domains=failure_domains,
        partitions=partitions,
        parallel_mode=parallel_mode,
        sanitize=sanitize,
    )
