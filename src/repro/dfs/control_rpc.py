"""Networked control plane: metadata/management service nodes (Fig. 1a).

The benchmarks measure pure data-plane latency (the client already
holds the layout), matching the paper's methodology.  This module adds
the rest of Fig. 1a for completeness: a *metadata node* on the network
that serves layout queries, object creation, and ticket issuing over
RPC, so the full workflow — authenticate, query metadata (1→2), then
access storage directly (3) — can be simulated and timed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simnet.engine import Event
from .capability import Rights
from .cluster import Testbed
from .layout import EcSpec, ReplicationSpec
from .metadata import MetadataError
from .nodes import StorageNode

__all__ = ["MetadataNode", "install_control_plane", "ControlPlaneClient"]

#: CPU cost of a metadata lookup / allocation on the metadata node
MD_LOOKUP_NS = 400.0
MD_CREATE_NS = 900.0


class MetadataNode(StorageNode):
    """A host running the metadata/management front end.

    Reuses the StorageNode RPC machinery (command queue + CPU cores);
    its handlers call straight into the testbed's control-plane
    services.
    """

    def __init__(self, testbed: Testbed, name: str = "mds"):
        # partitioned testbeds hand out a coordinator facade as `sim`;
        # the metadata node lives in the driver partition with the clients
        sim = getattr(testbed.sim, "driver_sim", testbed.sim)
        super().__init__(sim, testbed.net, name, testbed.params)
        self.testbed = testbed
        self.register_rpc("md_lookup", _md_lookup)
        self.register_rpc("md_create", _md_create)
        self.register_rpc("md_ticket", _md_ticket)
        self.register_rpc("md_report_failure", _md_report_failure)


def _md_lookup(node: MetadataNode, headers, payload, src):
    yield from node.cpu.run(MD_LOOKUP_NS)
    try:
        layout = node.testbed.metadata.lookup(headers["path"])
        node.respond(src, headers["greq_id"], layout)
    except MetadataError as e:
        node.respond(src, headers["greq_id"], str(e), error=True)


def _md_create(node: MetadataNode, headers, payload, src):
    yield from node.cpu.run(MD_CREATE_NS)
    try:
        layout = node.testbed.metadata.create(
            headers["path"],
            headers["size"],
            replication=headers.get("replication"),
            ec=headers.get("ec"),
        )
        node.respond(src, headers["greq_id"], layout)
    except MetadataError as e:
        node.respond(src, headers["greq_id"], str(e), error=True)


def _md_ticket(node: MetadataNode, headers, payload, src):
    yield from node.cpu.run(MD_LOOKUP_NS)
    try:
        cap = node.testbed.metadata.issue_ticket(
            headers["client_id"], headers["path"], headers.get("rights", Rights.RW)
        )
        node.respond(src, headers["greq_id"], cap)
    except MetadataError as e:
        node.respond(src, headers["greq_id"], str(e), error=True)


def _md_report_failure(node: MetadataNode, headers, payload, src):
    yield from node.cpu.run(MD_LOOKUP_NS)
    node.testbed.mgmt.report_failed(headers["node"])
    node.respond(src, headers["greq_id"], "ok")


def install_control_plane(testbed: Testbed, name: str = "mds") -> MetadataNode:
    """Attach a metadata node to the testbed's network."""
    return MetadataNode(testbed, name=name)


class ControlPlaneClient:
    """Client-side stubs for the metadata RPCs (all timed)."""

    def __init__(self, testbed: Testbed, client_node, mds_name: str = "mds"):
        self.testbed = testbed
        self.node = client_node
        self.mds = mds_name

    def _call(self, rpc: str, **fields) -> Event:
        return self.node.nic.post_rpc(self.mds, {"rpc": rpc, **fields}, header_bytes=64)

    def lookup(self, path: str) -> Event:
        """Steps 1→2 of Fig. 1a: fetch the file layout."""
        return self._call("md_lookup", path=path)

    def create(self, path: str, size: int,
               replication: Optional[ReplicationSpec] = None,
               ec: Optional[EcSpec] = None) -> Event:
        return self._call("md_create", path=path, size=size,
                          replication=replication, ec=ec)

    def ticket(self, path: str, client_id: int, rights: Rights = Rights.RW) -> Event:
        return self._call("md_ticket", path=path, client_id=client_id, rights=rights)

    def report_failure(self, node: str) -> Event:
        """§VII: a client that times out on an ack signals the failure."""
        return self._call("md_report_failure", node=node)
