"""Pluggable block-placement policies for the metadata service.

The seed hard-wired capacity- and liveness-blind round-robin into
``MetadataService._pick_nodes``; HDFS-style control planes make this a
policy point (Shvachko et al. 2010: default/rack-aware placement).  The
metadata service now builds a deterministic candidate list — alive
nodes, excluding the caller's exclusions, each with room for the
requested extent — and hands it to a :class:`PlacementPolicy`:

* :class:`RoundRobinPolicy` — the seed's rotation, now over eligible
  nodes only (the default; preserves the historical placement order);
* :class:`CapacityAwarePolicy` — most-free-first, so hot nodes shed
  load and a nearly-full node stops attracting extents long before it
  turns ``create()`` into a cluster-wide error;
* :class:`FailureDomainPolicy` — spreads the picks across failure
  domains (racks) round-robin, capacity-aware within each domain, so a
  whole-domain outage costs at most ``ceil(k / n_domains)`` replicas of
  any object.

Policies are plain deterministic objects; the only state is a rotation
cursor, exposed through ``snapshot()``/``restore()`` so the metadata
service can unwind a pick when a transactional create aborts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

__all__ = [
    "NodeView",
    "PlacementPolicy",
    "RoundRobinPolicy",
    "CapacityAwarePolicy",
    "FailureDomainPolicy",
    "make_policy",
]


@dataclass(frozen=True)
class NodeView:
    """What a policy may know about one candidate storage node."""

    name: str
    #: stable position in the metadata service's node order (tie-break)
    index: int
    free_bytes: int
    #: failure domain (rack) id; defaults to the node's own index
    domain: int


class PlacementPolicy:
    """Strategy interface: pick ``n`` distinct nodes from ``views``.

    ``views`` is pre-filtered by the metadata service (alive, not
    excluded, room for the extent) and ordered by node index; the
    caller guarantees ``n <= len(views)``.  Implementations must be
    deterministic.
    """

    name = "abstract"

    def pick(self, views: Sequence[NodeView], n: int) -> List[str]:
        raise NotImplementedError

    # transactional create: unwind any cursor the pick advanced
    def snapshot(self) -> object:
        return None

    def restore(self, token: object) -> None:
        pass


class RoundRobinPolicy(PlacementPolicy):
    """The seed's rotation, restricted to eligible candidates."""

    name = "roundrobin"

    def __init__(self) -> None:
        self._rr = 0

    def pick(self, views: Sequence[NodeView], n: int) -> List[str]:
        k = len(views)
        out = [views[(self._rr + i) % k].name for i in range(n)]
        self._rr += n
        return out

    def snapshot(self) -> object:
        return self._rr

    def restore(self, token: object) -> None:
        self._rr = int(token)  # type: ignore[arg-type]


class CapacityAwarePolicy(PlacementPolicy):
    """Most free space first; node index breaks ties deterministically."""

    name = "capacity"

    def pick(self, views: Sequence[NodeView], n: int) -> List[str]:
        ranked = sorted(views, key=lambda v: (-v.free_bytes, v.index))
        return [v.name for v in ranked[:n]]


class FailureDomainPolicy(PlacementPolicy):
    """Spread across failure domains, capacity-aware within each.

    Domains are visited round-robin (a cursor rotates the starting
    domain between calls so primaries spread too); within a domain the
    most-free node is taken first.  When ``n`` exceeds the number of
    populated domains the rotation wraps and takes seconds per domain.
    """

    name = "domain"

    def __init__(self) -> None:
        self._rr = 0

    def pick(self, views: Sequence[NodeView], n: int) -> List[str]:
        by_domain: Dict[int, List[NodeView]] = {}
        for v in views:
            by_domain.setdefault(v.domain, []).append(v)
        for members in by_domain.values():
            members.sort(key=lambda v: (-v.free_bytes, v.index))
        domains = sorted(by_domain)
        start = self._rr % len(domains)
        self._rr += 1
        out: List[str] = []
        round_i = 0
        while len(out) < n:
            progressed = False
            for j in range(len(domains)):
                dom = domains[(start + j) % len(domains)]
                members = by_domain[dom]
                if round_i < len(members):
                    out.append(members[round_i].name)
                    progressed = True
                    if len(out) == n:
                        break
            round_i += 1
            if not progressed:  # caller guarantees n <= len(views)
                break
        return out

    def snapshot(self) -> object:
        return self._rr

    def restore(self, token: object) -> None:
        self._rr = int(token)  # type: ignore[arg-type]


_FACTORY = {
    "roundrobin": RoundRobinPolicy,
    "rr": RoundRobinPolicy,
    "capacity": CapacityAwarePolicy,
    "domain": FailureDomainPolicy,
}


def make_policy(spec: Union[str, PlacementPolicy]) -> PlacementPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(spec, PlacementPolicy):
        return spec
    cls = _FACTORY.get(spec)
    if cls is None:
        raise ValueError(
            f"unknown placement policy {spec!r}; pick one of "
            f"{sorted(set(_FACTORY))}"
        )
    return cls()
