"""repro — Building Blocks for Network-Accelerated Distributed File Systems.

A full-system reproduction of Di Girolamo et al., SC 2022: sPIN/PsPIN
SmartNIC-offloaded DFS policies (client authentication, replication,
erasure coding) evaluated on a packet-level discrete-event simulation,
with all CPU- and RDMA-based baselines.

Quickstart::

    from repro import build_testbed, install_spin_targets, DfsClient, ReplicationSpec

    tb = build_testbed(n_storage=4)
    install_spin_targets(tb)
    client = DfsClient(tb)
    client.create("/data/ckpt", size=1 << 20, replication=ReplicationSpec(k=3, strategy="ring"))
    outcome = client.write_sync("/data/ckpt", b"x" * 65536, protocol="spin")
    print(outcome.latency_ns, "ns")
"""

from .dfs import (
    Capability,
    CapabilityAuthority,
    DfsClient,
    EcSpec,
    FileLayout,
    ReplicationSpec,
    Rights,
    Testbed,
    build_testbed,
)
from .params import HostParams, InecParams, PsPinParams, SimParams
from .protocols import (
    WriteContext,
    WriteOutcome,
    install_cpu_replication_targets,
    install_hyperloop_targets,
    install_inec_targets,
    install_rpc_rdma_targets,
    install_rpc_targets,
    install_spin_targets,
)
from .simnet import NetConfig, Simulator

__version__ = "1.0.0"

__all__ = [
    "Capability",
    "CapabilityAuthority",
    "DfsClient",
    "EcSpec",
    "FileLayout",
    "HostParams",
    "InecParams",
    "NetConfig",
    "PsPinParams",
    "ReplicationSpec",
    "Rights",
    "SimParams",
    "Simulator",
    "Testbed",
    "WriteContext",
    "WriteOutcome",
    "__version__",
    "build_testbed",
    "install_cpu_replication_targets",
    "install_hyperloop_targets",
    "install_inec_targets",
    "install_rpc_rdma_targets",
    "install_rpc_targets",
    "install_spin_targets",
]
