"""Deterministic, seedable fault injection for the simulated fabric.

The paper's NACK-and-retry machinery (§III-B2) and cleanup handlers
(§VII) exist because real fabrics lose packets and real clients die.
This module supplies the missing adversary: per-link packet loss and
corruption probabilities plus scheduled link-down / node-down windows,
all driven by **named per-link random streams** so a run is reproducible
from a single integer seed regardless of how many links exist or in
which order they were created.

Wiring (all optional — a default :class:`SimParams` injects nothing):

* :class:`~repro.simnet.link.Port` consults ``sim.faults`` after
  serializing each packet and before scheduling delivery — the natural
  place for *wire* faults;
* :class:`~repro.rdma.nic.RdmaNic.receive` consults it for node-down
  windows and drops corrupted packets (the CRC check of a real NIC);
* the client-side reliability layer in :mod:`repro.rdma.nic` (per-op
  retransmission timers with capped exponential backoff) is enabled by
  ``FaultParams.retransmit`` and is what lets every write protocol
  complete under loss instead of deadlocking in ``run_until_event``.

Determinism contract: one uniform draw per (link, packet) in delivery
order, from ``random.Random(f"{seed}:{link_name}")``.  String seeding
hashes via SHA-512 (stable across processes and Python versions), so two
runs with the same seed produce identical drop decisions and therefore
identical traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .simnet.engine import Simulator
    from .simnet.packet import Packet

__all__ = ["DownWindow", "FaultParams", "FaultInjector", "install_faults"]


@dataclass(frozen=True)
class DownWindow:
    """A scheduled outage of a link or node during ``[t0_ns, t1_ns)``.

    ``target`` is matched as a substring against the link owner name
    (links are named ``"<src>-><dst>"``, e.g. ``"switch->sn0"`` for the
    switch egress towards storage node 0) or against the node name.
    """

    target: str
    t0_ns: float
    t1_ns: float

    def covers(self, name: str, now_ns: float) -> bool:
        return self.target in name and self.t0_ns <= now_ns < self.t1_ns


@dataclass(frozen=True)
class FaultParams:
    """Knobs for the fault injector and the NIC reliability layer."""

    #: master seed for every per-link random stream
    seed: int = 0
    #: per-packet, per-link probability the packet vanishes on the wire
    loss_prob: float = 0.0
    #: per-packet, per-link probability the packet arrives corrupted
    #: (dropped by the receiving NIC's CRC check — a *receiver-visible*
    #: loss, unlike ``loss_prob``)
    corrupt_prob: float = 0.0
    #: scheduled link outages (matched against link owner names)
    link_down: Tuple[DownWindow, ...] = ()
    #: scheduled node outages (matched against endpoint names)
    node_down: Tuple[DownWindow, ...] = ()
    #: enable the initiator-side retransmission layer in RdmaNic
    retransmit: bool = False
    #: initial per-op retransmission timeout
    rto_ns: float = 100_000.0
    #: multiplicative backoff applied after every retransmission
    rto_backoff: float = 2.0
    #: cap for the backed-off RTO
    rto_max_ns: float = 1_600_000.0
    #: retransmission budget before the op fails with a "timeout" nack
    max_retransmits: int = 8

    @property
    def active(self) -> bool:
        """True when any wire/endpoint fault can actually occur."""
        return (
            self.loss_prob > 0.0
            or self.corrupt_prob > 0.0
            or bool(self.link_down)
            or bool(self.node_down)
        )

    @classmethod
    def for_loss(cls, loss_prob: float, seed: int = 0, **kw) -> "FaultParams":
        """Uniform per-link loss with the reliability layer enabled."""
        return cls(seed=seed, loss_prob=loss_prob, retransmit=True, **kw)


class FaultInjector:
    """Per-simulation fault oracle, installed as ``sim.faults``."""

    def __init__(self, sim: "Simulator", params: FaultParams):
        self.sim = sim
        self.params = params
        self._rngs: Dict[str, random.Random] = {}
        # counters (mirrored into the telemetry registry when enabled)
        self.drops = 0
        self.corrupted = 0
        self.node_drops = 0
        self.drops_by_link: Dict[str, int] = {}

    # ------------------------------------------------------------ streams
    def _rng(self, link_name: str) -> random.Random:
        rng = self._rngs.get(link_name)
        if rng is None:
            # one named stream per link: decisions on one link do not
            # perturb another link's stream, so traces stay reproducible
            # under topology or scheduling changes elsewhere
            rng = self._rngs[link_name] = random.Random(
                f"{self.params.seed}:{link_name}"
            )
        return rng

    # ------------------------------------------------------------ verdicts
    def egress_verdict(self, link_name: str, pkt: "Packet") -> Optional[str]:
        """Fate of ``pkt`` leaving ``link_name`` now: ``"drop"``,
        ``"corrupt"``, or ``None`` (deliver intact)."""
        now = self.sim.now
        for w in self.params.link_down:
            if w.covers(link_name, now):
                self._count_drop(link_name)
                return "drop"
        p_loss = self.params.loss_prob
        p_corr = self.params.corrupt_prob
        if p_loss <= 0.0 and p_corr <= 0.0:
            return None
        u = self._rng(link_name).random()
        if u < p_loss:
            self._count_drop(link_name)
            return "drop"
        if u < p_loss + p_corr:
            self.corrupted += 1
            tel = self.sim.telemetry
            if tel.enabled:
                tel.metrics.counter("faults.corrupted").inc()
            return "corrupt"
        return None

    def allows_coalescing(self) -> bool:
        """Whether the packet-train fast path may run while this injector
        is armed.  Always False: an installed injector means loss,
        corruption, or down windows can strike any packet, so every
        packet must traverse the per-packet path where
        :meth:`egress_verdict` is consulted.  (``install_faults`` leaves
        ``sim.faults = None`` when nothing can fire, so fault-free runs
        still coalesce at full speed.)"""
        return False

    def node_is_down(self, name: str, now_ns: Optional[float] = None) -> bool:
        now = self.sim.now if now_ns is None else now_ns
        return any(w.covers(name, now) for w in self.params.node_down)

    def count_node_drop(self, name: str) -> None:
        self.node_drops += 1
        tel = self.sim.telemetry
        if tel.enabled:
            tel.metrics.counter("faults.node_drops").inc()
            tel.metrics.counter(f"faults.node_drops.{name}").inc()

    # ------------------------------------------------------------ internals
    def _count_drop(self, link_name: str) -> None:
        self.drops += 1
        self.drops_by_link[link_name] = self.drops_by_link.get(link_name, 0) + 1
        tel = self.sim.telemetry
        if tel.enabled:
            tel.metrics.counter("faults.drops").inc()
            tel.metrics.counter(f"faults.drops.{link_name}").inc()


def install_faults(sim: "Simulator", params: Optional[FaultParams]) -> Optional[FaultInjector]:
    """Attach a :class:`FaultInjector` to ``sim`` (as ``sim.faults``)
    when ``params`` can actually inject something; otherwise leave the
    zero-overhead default (``sim.faults is None``)."""
    if params is None or not params.active:
        sim.faults = None
        return None
    injector = FaultInjector(sim, params)
    sim.faults = injector
    return injector
