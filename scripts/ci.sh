#!/usr/bin/env bash
# CI gate: tier-1 tests, trace-export smoke, simsan sanitize stage,
# telemetry-overhead guard, parallel-sweep smoke, simulator perf guard.
#
# Usage: scripts/ci.sh            (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== simlint gate (determinism / coroutine-protocol static analysis) =="
# zero-findings baseline: both errors AND warnings fail; see docs/simlint.md
python -m repro lint src/repro

echo
echo "== ruff + mypy (skipped when the tools are not installed) =="
# optional in minimal environments: the container bakes only the python
# toolchain; config lives in pyproject.toml, installed via `pip install -e .[lint]`
if python -m ruff --version > /dev/null 2>&1; then
    python -m ruff check src tests
else
    echo "ruff not installed; skipping (pip install -e .[lint] to enable)"
fi
if python -m mypy --version > /dev/null 2>&1; then
    python -m mypy src/repro/simnet src/repro/simlint \
        src/repro/workloads src/repro/scenarios
else
    echo "mypy not installed; skipping (pip install -e .[lint] to enable)"
fi

echo
echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== trace-export smoke (replicated spin write -> Perfetto JSON) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
python -m repro trace --protocol spin --replication 3 \
    --out "$tmpdir/ci.trace.json" --metrics "$tmpdir/ci.metrics.json"

python - "$tmpdir/ci.trace.json" "$tmpdir/ci.metrics.json" <<'PY'
import json
import sys

trace_path, metrics_path = sys.argv[1], sys.argv[2]
doc = json.load(open(trace_path))
events = doc["traceEvents"]
assert doc["displayTimeUnit"] == "ns", "missing displayTimeUnit"
assert events, "empty traceEvents"
slices = [e for e in events if e["ph"] == "X"]
named = {e["pid"] for e in events if e["ph"] == "M" and e["name"] == "process_name"}
for e in slices:
    assert e["ts"] >= 0 and e["dur"] >= 0, f"bad timing in {e}"
    assert e["pid"] in named, f"slice on unnamed pid {e['pid']}"
cats = {e["cat"] for e in slices}
missing = {"request", "net", "hpu", "host"} - cats
assert not missing, f"trace missing layers: {missing}"
timed = [e["ts"] for e in events if e["ph"] != "M"]
assert timed == sorted(timed), "timestamps not monotonic"

snap = json.load(open(metrics_path))
assert snap["counters"], "metrics dump has no counters"
assert any(k.endswith(".latency_ns") for k in snap["histograms"]), \
    "no request-latency histogram"
print(f"trace schema OK: {len(slices)} spans across {sorted(cats)}")
PY

echo
echo "== fault-injection smoke (seeded loss, all protocols, quiesce) =="
# seed 2 is known to drop packets at p=1e-3, so the retransmission
# path is actually exercised, not just compiled
python -m repro demo --loss 1e-3 --seed 2

echo
echo "== simsan gate (quick scenario + faulty protocol point, zero findings) =="
# the runtime sanitizer must come back clean on a live schedule and on
# a seeded-loss protocol point (schedule races, quiesce leaks, orphan
# spans); see docs/simsan.md
python - <<'PY'
from repro.runner import point_seed
from repro.scenarios import get, run_scenario

spec = get("hot_shard", quick=True)
seed = point_seed("scenario_matrix", {"scenario": spec.name, "quick": True})
timings = {}
row = run_scenario(spec, seed=seed, timings=timings, sanitize=True)
report = timings["sanitizer"]
assert row["quiesced"], "hot_shard quick failed to quiesce"
assert report.ok, f"sanitizer findings on hot_shard quick:\n{report.summary()}"
print(f"hot_shard quick sanitized clean: {report.summary()}")
PY
python -m repro sanitize --demo --loss 1e-3 --seed 2

echo
echo "== telemetry disabled-overhead guard (<3%) =="
python -m pytest benchmarks/bench_simulator_perf.py::test_telemetry_disabled_overhead \
    -q --no-header -p no:cacheprovider

echo
echo "== SLO suite (fixed-seed latency anatomy vs BENCH_slo.json) =="
# runs every scenario: phase decompositions must sum to the end-to-end
# latency within 1 ns, every declared budget must hold, and no phase
# percentile may regress past the noise band of the committed baseline
python -m repro slo --check BENCH_slo.json

echo
echo "== parallel sweep smoke (--jobs 2 must match serial byte-for-byte) =="
python -m repro.experiments fig06 --quick --jobs 1 --no-cache --no-check \
    --csv "$tmpdir/serial.csv" > /dev/null
python -m repro.experiments fig06 --quick --jobs 2 --no-cache --no-check \
    --csv "$tmpdir/parallel.csv" > /dev/null
cmp "$tmpdir/serial.csv" "$tmpdir/parallel.csv"
echo "parallel sweep rows identical to serial"

echo
echo "== partitioned engine (fixed seed: serial vs 4-way byte-identical) =="
# five write protocols through the conservative-window engine; the CSV
# carries per-op completion times, final clocks, and every counter, so
# cmp proves the cut changes nothing observable
python -m repro parallel --partitions 1 --out "$tmpdir/eng-serial.csv" > /dev/null
python -m repro parallel --partitions 4 --out "$tmpdir/eng-part4.csv" > /dev/null
cmp "$tmpdir/eng-serial.csv" "$tmpdir/eng-part4.csv"
echo "partitioned engine (4-way inline) identical to serial"

echo
echo "== coalesced events-per-packet budget (deterministic, 5% cap) =="
# event/packet counts of the coalesced pipeline are fully deterministic:
# any growth past +5% of the committed baseline is a real de-coalescing
# regression, not machine noise
python - <<'PY'
import json

import numpy as np

from repro.dfs.client import DfsClient
from repro.dfs.cluster import build_testbed
from repro.protocols import install_spin_targets

tb = build_testbed(n_storage=2)
install_spin_targets(tb)
c = DfsClient(tb)
c.create("/f", size=64 * 1024)
data = np.zeros(64 * 1024, np.uint8)
assert c.write_sync("/f", data, protocol="spin").ok  # warm-up
e0, p0 = tb.sim.events_dispatched, tb.net.switch.rx_packets
out = c.write_sync("/f", data, protocol="spin")
assert out.ok
# steady-state delta, matching the BENCH pipeline measurement
epp = (tb.sim.events_dispatched - e0) / (tb.net.switch.rx_packets - p0)
base = json.load(open("BENCH_simulator.json"))["pipeline"]["events_per_packet"]
assert epp <= base * 1.05, (
    f"coalesced pipeline regressed: {epp:.3f} events/packet "
    f"> baseline {base} (+5% cap)")
assert epp <= 9.0, f"events/packet budget blown: {epp:.3f} > 9.0"
print(f"events/packet {epp:.3f} (baseline {base}, budget 9.0) OK")
PY

echo
echo "== load-engine smoke (8 clients, fixed seed, quiesce) =="
python - <<'PY'
from repro.dfs.cluster import build_testbed
from repro.protocols import install_spin_targets
from repro.workloads import LoadSpec, closed_loop_write_load

tb = build_testbed(n_storage=4, n_clients=4)
install_spin_targets(tb)
spec = LoadSpec(n_clients=8, outstanding=2, think_ns=2_000.0,
                warmup_ns=50_000.0, measure_ns=400_000.0, seed=7)
res = closed_loop_write_load(tb, 8192, "spin", spec)
assert res.quiesced, "load engine failed to quiesce"
# fixed seed => exact deterministic op counts
assert res.ops == 1399, f"aggregate measured ops drifted: {res.ops} != 1399"
assert res.issued == 1568, f"issued ops drifted: {res.issued} != 1568"
assert all(pc["ops"] > 0 for pc in res.per_client), "a client starved"
print(f"load engine OK: {res.ops} ops, {res.kops_per_s:.0f} kops/s, "
      f"p99 {res.latency['p99']:.0f} ns, quiesced")
PY

echo
echo "== recovery-storm smoke (fixed seed, byte-identical schedule) =="
# kills a whole failure domain mid-load: heartbeat detection, bounded
# re-replication through the data plane, and shape checks must all
# pass; a second run must reproduce the rows (incl. the repair-schedule
# digest) byte-for-byte
python -m repro.experiments recovery_storm --quick --no-cache \
    --csv "$tmpdir/storm1.csv"
python -m repro.experiments recovery_storm --quick --no-cache --no-check \
    --csv "$tmpdir/storm2.csv" > /dev/null
cmp "$tmpdir/storm1.csv" "$tmpdir/storm2.csv"
echo "recovery storm deterministic: repeated run byte-identical"

echo
echo "== scenario-matrix smoke (3-scenario mini-matrix, byte-identical) =="
# hot_shard / incast / uniform_onoff through the aggregated flow
# generators at a fixed seed: shape checks (skew lands on the pinned
# node, incast backlog spikes) must pass, and a second run must
# reproduce the rows — including every schedule digest — byte-for-byte
python -m repro.experiments scenario_matrix --quick --no-cache \
    --csv "$tmpdir/matrix1.csv"
python -m repro.experiments scenario_matrix --quick --no-cache --no-check \
    --csv "$tmpdir/matrix2.csv" > /dev/null
cmp "$tmpdir/matrix1.csv" "$tmpdir/matrix2.csv"
echo "scenario matrix deterministic: repeated run byte-identical"

echo
echo "== simulator perf guard (vs committed BENCH_simulator.json) =="
# wide 30% wall-clock tolerance absorbs CI machine noise; the
# events-per-packet count is deterministic and capped at +5%
python -m repro perf --check BENCH_simulator.json --tolerance 0.30

echo
echo "== single-core kernel guard (serial events/s within 10%) =="
# the partitioned engine must not tax the serial kernel: the kernel
# section's wall-clock gate runs at a tight 10% (2x the 5% CLI
# tolerance), so a coordination-overhead leak into the hot dispatch
# loop fails CI even when the wider 30% gate above would absorb it
python -m repro perf --check BENCH_simulator.json --tolerance 0.05 \
    --section kernel

echo
echo "CI gate passed."
